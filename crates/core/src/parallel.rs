//! Shared-memory parallelisation (§3.4 of the paper).
//!
//! All streaming algorithms in this crate are vertex-centric, so they are
//! parallelised by splitting the stream of nodes among threads. The paper's
//! OpenMP `parallel for` becomes the batch executor's parallel dispatch
//! ([`BatchExecutor::run_parallel`]): contiguous node chunks balanced by
//! *edge mass* rather than node count, so skewed degree distributions do not
//! starve some threads while a hub-heavy chunk hogs another. This module
//! only contains the scoring kernels; chunking and pool management live in
//! [`crate::executor`]. The only shared mutable state are
//!
//! * the block (or tree-node) weights, updated with atomic additions so that
//!   the balance constraint stays consistent, and
//! * the assignment array, written once per node by exactly one thread and
//!   read (racily but harmlessly) by the others when they look up the blocks
//!   of already-streamed neighbors.
//!
//! As in the paper, a block could in principle be overloaded if several
//! threads decide to use its last free slot simultaneously; this is rare and
//! deliberately not synchronised.

use crate::config::{OmsConfig, OnePassConfig, ScorerKind};
use crate::executor::{
    measure_pass, BatchExecutor, PassOutcome, PassTracker, PassTrajectory, RestreamOptions,
};
use crate::oms::OnlineMultiSection;
use crate::onepass::FlatObjective;
use crate::partition::{Partition, UNASSIGNED};
use crate::scorer::{fennel_alpha, hash_node};
use crate::{BlockId, Result};
use oms_graph::{CsrGraph, EdgeWeight, InMemoryStream, NodeWeight};
use oms_obs::Stopwatch;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};

fn collect_partition(
    k: u32,
    assignments: Vec<AtomicU32>,
    node_weights: &[NodeWeight],
) -> Partition {
    let assignments: Vec<BlockId> = assignments.into_iter().map(|a| a.into_inner()).collect();
    Partition::from_assignments(k, assignments, node_weights)
}

/// One tracked pass of a parallel restreaming driver: snapshot the atomic
/// assignment array, measure it on the in-memory graph, and let the shared
/// [`PassTracker`] apply the engine's accept / converge / revert rules.
/// `restore` puts a snapshot back into the kernel's atomic state. Returns
/// `true` when the pass loop should stop.
#[allow(clippy::too_many_arguments)]
fn track_parallel_pass(
    graph: &CsrGraph,
    assignments: &[AtomicU32],
    num_blocks: u32,
    last_pass: bool,
    moved: usize,
    seconds: f64,
    tracker: &mut PassTracker,
    restore: &mut dyn FnMut(&[BlockId]),
) -> Result<bool> {
    let snapshot: Vec<BlockId> = assignments
        .iter()
        .map(|a| a.load(Ordering::Relaxed))
        .collect();
    let (edge_cut, imbalance) =
        measure_pass(&mut InMemoryStream::new(graph), &snapshot, num_blocks)?;
    Ok(
        match tracker.observe(last_pass, moved, seconds, edge_cut, imbalance, &snapshot) {
            PassOutcome::Continue => false,
            PassOutcome::Stop => true,
            PassOutcome::Revert(best) => {
                restore(&best);
                true
            }
        },
    )
}

/// Parallel Hashing: embarrassingly parallel, provided for the scalability
/// comparison (it is so cheap that parallel overheads dominate, exactly as
/// the paper observes).
pub fn hashing_parallel(
    graph: &CsrGraph,
    k: u32,
    config: OnePassConfig,
    threads: usize,
) -> Result<Partition> {
    let n = graph.num_nodes();
    let mut assignments: Vec<BlockId> = vec![UNASSIGNED; n];
    BatchExecutor::default().run_parallel_mut(graph, threads, &mut assignments, |lo, _hi, out| {
        for (slot, v) in out.iter_mut().zip(lo..) {
            *slot = (hash_node(v, config.seed) % k as u64) as BlockId;
        }
    });
    Ok(Partition::from_assignments(
        k,
        assignments,
        graph.node_weights(),
    ))
}

/// Per-thread cache of the pre-evaluated per-block penalty bases — the
/// parallel counterpart of the sequential `score_base` arena. The penalty
/// ([`FlatObjective::base`]) is a pure function of the block's load, so an
/// entry is recomputed only when the atomically-read load differs from the
/// cached one: one `powf` per observed load change instead of `k` per node,
/// with bit-identical scores.
struct CachedBases {
    weights: Vec<NodeWeight>,
    bases: Vec<f64>,
}

impl CachedBases {
    fn new(len: usize) -> Self {
        CachedBases {
            // `NodeWeight::MAX` never matches a real load, so every entry is
            // computed on first use.
            weights: vec![NodeWeight::MAX; len],
            bases: vec![0.0; len],
        }
    }

    #[inline(always)]
    fn get(
        &mut self,
        idx: usize,
        weight: NodeWeight,
        objective: FlatObjective,
        capacity: NodeWeight,
        alpha: f64,
        gamma: f64,
    ) -> f64 {
        if self.weights[idx] != weight {
            self.weights[idx] = weight;
            self.bases[idx] = objective.base(weight, capacity, alpha, gamma);
        }
        self.bases[idx]
    }
}

/// Parallel flat one-pass partitioning (Fennel or LDG) with the
/// vertex-centric scheme of §3.4.
pub fn onepass_parallel(
    graph: &CsrGraph,
    k: u32,
    scorer: FlatObjective,
    config: OnePassConfig,
    threads: usize,
) -> Result<Partition> {
    onepass_parallel_restream(graph, k, scorer, config, threads, 1, 0.0, false).map(|(p, _)| p)
}

/// Multi-pass parallel flat partitioning: up to `passes` vertex-centric
/// parallel passes; from the second pass on each node is unassigned (its
/// weight atomically removed from its block) before being re-scored against
/// the previous pass's assignment.
///
/// Per-pass quality is measured on the in-memory graph with the same
/// early-exit rules as the sequential engine: the loop stops once no node
/// moved, once the relative cut improvement drops below `convergence`, and
/// a pass that worsened the cut is reverted. With `threads > 1` the node
/// moves inside one pass are racy (the paper's relaxation), so the
/// trajectory — while always non-increasing — is not deterministic.
#[allow(clippy::too_many_arguments)]
pub fn onepass_parallel_restream(
    graph: &CsrGraph,
    k: u32,
    scorer: FlatObjective,
    config: OnePassConfig,
    threads: usize,
    passes: usize,
    convergence: f64,
    tracked: bool,
) -> Result<(Partition, PassTrajectory)> {
    let n = graph.num_nodes();
    let passes = passes.max(1);
    let capacity = Partition::capacity(graph.total_node_weight(), k, config.epsilon);
    let alpha = fennel_alpha(k, graph.num_edges(), n);
    let gamma = config.gamma;

    let assignments: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNASSIGNED)).collect();
    let block_weights: Vec<AtomicU64> = (0..k as usize).map(|_| AtomicU64::new(0)).collect();
    let mut tracker = PassTracker::new(RestreamOptions::tracked(passes, convergence));
    let measure = tracked || passes > 1;

    for pass in 0..passes {
        let moved = AtomicUsize::new(0);
        let clock = Stopwatch::start();
        BatchExecutor::default().run_parallel(graph, threads, |lo, hi| {
            let mut conn: Vec<EdgeWeight> = vec![0; k as usize];
            let mut touched: Vec<BlockId> = Vec::new();
            let mut bases = CachedBases::new(k as usize);
            let mut local_moved = 0usize;
            for v in lo..hi {
                let node_weight = graph.node_weight(v);
                let old = if pass > 0 {
                    // Restreaming: *publish* the unassignment (an atomic swap
                    // on the slot) before removing the weight, so a scoring
                    // thread that still sees the node in its block also still
                    // sees its weight in the load vector — the load may be
                    // transiently overstated, never understated.
                    let prev = assignments[v as usize].swap(UNASSIGNED, Ordering::AcqRel);
                    if prev != UNASSIGNED {
                        block_weights[prev as usize].fetch_sub(node_weight, Ordering::AcqRel);
                    }
                    prev
                } else {
                    assignments[v as usize].load(Ordering::Relaxed)
                };
                for (u, w) in graph.neighbors_weighted(v) {
                    let b = assignments[u as usize].load(Ordering::Acquire);
                    if b != UNASSIGNED {
                        if conn[b as usize] == 0 {
                            touched.push(b);
                        }
                        conn[b as usize] += w;
                    }
                }
                let mut best: Option<(usize, f64, NodeWeight)> = None;
                let mut fallback = 0usize;
                let mut fallback_load = f64::INFINITY;
                for b in 0..k as usize {
                    let weight = block_weights[b].load(Ordering::Acquire);
                    let load = weight as f64 / capacity.max(1) as f64;
                    if load < fallback_load {
                        fallback_load = load;
                        fallback = b;
                    }
                    if weight + node_weight > capacity {
                        continue;
                    }
                    let base = bases.get(b, weight, scorer, capacity, alpha, gamma);
                    let s = scorer.combine(conn[b] as f64, base);
                    match best {
                        None => best = Some((b, s, weight)),
                        Some((_, bs, bw)) => {
                            if s > bs || (s == bs && weight < bw) {
                                best = Some((b, s, weight));
                            }
                        }
                    }
                }
                let chosen = best.map(|(b, _, _)| b).unwrap_or(fallback);
                // Mirror image of the unassignment: stage the weight first,
                // then publish the assignment.
                block_weights[chosen].fetch_add(node_weight, Ordering::AcqRel);
                assignments[v as usize].store(chosen as BlockId, Ordering::Release);
                if chosen as BlockId != old {
                    local_moved += 1;
                }
                for &b in &touched {
                    conn[b as usize] = 0;
                }
                touched.clear();
            }
            if local_moved > 0 {
                moved.fetch_add(local_moved, Ordering::Relaxed);
            }
        });
        let seconds = clock.seconds();

        if measure {
            let mut restore = |snapshot: &[BlockId]| {
                for w in &block_weights {
                    w.store(0, Ordering::Relaxed);
                }
                for (v, &b) in snapshot.iter().enumerate() {
                    assignments[v].store(b, Ordering::Relaxed);
                    if b != UNASSIGNED {
                        block_weights[b as usize]
                            .fetch_add(graph.node_weight(v as u32), Ordering::Relaxed);
                    }
                }
            };
            let stop = track_parallel_pass(
                graph,
                &assignments,
                k,
                pass + 1 == passes,
                moved.into_inner(),
                seconds,
                &mut tracker,
                &mut restore,
            )?;
            if stop {
                break;
            }
        }
    }
    Ok((
        collect_partition(k, assignments, graph.node_weights()),
        tracker.finish(),
    ))
}

impl OnlineMultiSection {
    /// Shared-memory parallel OMS / nh-OMS over an in-memory graph.
    ///
    /// Semantically identical to [`OnlineMultiSection::partition_graph`]
    /// except that nodes streamed concurrently by other threads may not yet
    /// be visible when a node gathers its neighbors' assignments — the same
    /// relaxation the paper's OpenMP implementation makes.
    pub fn partition_graph_parallel(&self, graph: &CsrGraph, threads: usize) -> Result<Partition> {
        self.partition_graph_parallel_restream(graph, threads, 1, 0.0, false)
            .map(|(p, _)| p)
    }

    /// Multi-pass parallel OMS: up to `passes` parallel passes; from the
    /// second pass on, a node's weight is removed along its whole tree path
    /// before the descent is re-run against the previous pass's assignment
    /// (restreaming / remapping). Per-pass quality tracking, convergence
    /// early exit and the revert-on-worsen guard follow the sequential
    /// engine ([`BatchExecutor::run_restream`]).
    pub fn partition_graph_parallel_restream(
        &self,
        graph: &CsrGraph,
        threads: usize,
        passes: usize,
        convergence: f64,
        tracked: bool,
    ) -> Result<(Partition, PassTrajectory)> {
        let tree = self.tree();
        let config: &OmsConfig = self.config();
        let n = graph.num_nodes();
        let passes = passes.max(1);
        let capacities = tree.capacities(graph.total_node_weight(), config.epsilon);
        let alphas = tree.alphas(graph.num_edges(), n, config.alpha_mode);
        let max_fan_out = (0..tree.num_nodes() as u32)
            .map(|v| tree.children(v).len())
            .max()
            .unwrap_or(1)
            .max(1);

        let assignments: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNASSIGNED)).collect();
        let tree_weights: Vec<AtomicU64> =
            (0..tree.num_nodes()).map(|_| AtomicU64::new(0)).collect();
        let mut tracker = PassTracker::new(RestreamOptions::tracked(passes, convergence));
        let measure = tracked || passes > 1;

        for pass in 0..passes {
            let moved = AtomicUsize::new(0);
            let clock = Stopwatch::start();
            self.parallel_pass(
                graph,
                threads,
                pass,
                &assignments,
                &tree_weights,
                &capacities,
                &alphas,
                max_fan_out,
                &moved,
            );
            let seconds = clock.seconds();

            if measure {
                let mut restore = |snapshot: &[BlockId]| {
                    for w in &tree_weights {
                        w.store(0, Ordering::Relaxed);
                    }
                    for (v, &b) in snapshot.iter().enumerate() {
                        assignments[v].store(b, Ordering::Relaxed);
                        if b == UNASSIGNED {
                            continue;
                        }
                        let w = graph.node_weight(v as u32);
                        for &tree_node in tree.path_of_block(b) {
                            tree_weights[tree_node as usize].fetch_add(w, Ordering::Relaxed);
                        }
                    }
                };
                let stop = track_parallel_pass(
                    graph,
                    &assignments,
                    tree.num_blocks(),
                    pass + 1 == passes,
                    moved.into_inner(),
                    seconds,
                    &mut tracker,
                    &mut restore,
                )?;
                if stop {
                    break;
                }
            }
        }
        Ok((
            collect_partition(tree.num_blocks(), assignments, graph.node_weights()),
            tracker.finish(),
        ))
    }

    /// One vertex-centric parallel pass of the multi-section descent.
    #[allow(clippy::too_many_arguments)]
    fn parallel_pass(
        &self,
        graph: &CsrGraph,
        threads: usize,
        pass: usize,
        assignments: &[AtomicU32],
        tree_weights: &[AtomicU64],
        capacities: &[NodeWeight],
        alphas: &[f64],
        max_fan_out: usize,
        moved: &AtomicUsize,
    ) {
        let tree = self.tree();
        let config: &OmsConfig = self.config();
        BatchExecutor::default().run_parallel(graph, threads, |lo, hi| {
            let mut conn: Vec<EdgeWeight> = vec![0; max_fan_out];
            let mut bases = CachedBases::new(tree.num_nodes());
            let mut local_moved = 0usize;
            for v in lo..hi {
                let node_weight = graph.node_weight(v);
                let old = if pass > 0 {
                    // Restreaming: publish the unassignment (swap on the
                    // slot) before removing the node along its previous tree
                    // path, so concurrently-read tree weights are only ever
                    // overstated mid-move, never understated.
                    let prev = assignments[v as usize].swap(UNASSIGNED, Ordering::AcqRel);
                    if prev != UNASSIGNED {
                        for &tree_node in tree.path_of_block(prev) {
                            tree_weights[tree_node as usize]
                                .fetch_sub(node_weight, Ordering::AcqRel);
                        }
                    }
                    prev
                } else {
                    assignments[v as usize].load(Ordering::Relaxed)
                };
                let mut cur = tree.root();
                loop {
                    let children = tree.children(cur);
                    if children.is_empty() {
                        break;
                    }
                    let child_depth = tree.depth(cur) as usize + 1;
                    let chosen_idx = if self.hybrid_uses_hashing(child_depth) {
                        (hash_node(
                            v,
                            config.seed ^ (cur as u64).wrapping_mul(0x9E3779B97F4A7C15),
                        ) % children.len() as u64) as usize
                    } else {
                        let path_index = tree.depth(cur) as usize;
                        conn[..children.len()].fill(0);
                        for (u, w) in graph.neighbors_weighted(v) {
                            let b = assignments[u as usize].load(Ordering::Relaxed);
                            if b == UNASSIGNED {
                                continue;
                            }
                            let path = tree.path_of_block(b);
                            if path.len() <= path_index {
                                continue;
                            }
                            if path_index > 0 && path[path_index - 1] != cur {
                                continue;
                            }
                            conn[tree.child_index(path[path_index]) as usize] += w;
                        }
                        let mut best: Option<(usize, f64, NodeWeight)> = None;
                        let mut fallback = 0usize;
                        let mut fallback_load = f64::INFINITY;
                        let objective = match config.scorer {
                            ScorerKind::Fennel => FlatObjective::Fennel,
                            ScorerKind::Ldg => FlatObjective::Ldg,
                            ScorerKind::Hashing => unreachable!(),
                        };
                        for (i, &child) in children.iter().enumerate() {
                            let weight = tree_weights[child as usize].load(Ordering::Acquire);
                            let capacity = capacities[child as usize];
                            let load = weight as f64 / capacity.max(1) as f64;
                            if load < fallback_load {
                                fallback_load = load;
                                fallback = i;
                            }
                            if weight + node_weight > capacity {
                                continue;
                            }
                            // Tree-node-indexed cache: each tree node has its
                            // own fixed capacity and α, so the cached base is
                            // a pure function of its observed load.
                            let alpha = match objective {
                                FlatObjective::Fennel => alphas[child as usize],
                                FlatObjective::Ldg => 0.0,
                            };
                            let base = bases.get(
                                child as usize,
                                weight,
                                objective,
                                capacity,
                                alpha,
                                config.gamma,
                            );
                            let s = objective.combine(conn[i] as f64, base);
                            match best {
                                None => best = Some((i, s, weight)),
                                Some((_, bs, bw)) => {
                                    if s > bs || (s == bs && weight < bw) {
                                        best = Some((i, s, weight));
                                    }
                                }
                            }
                        }
                        best.map(|(i, _, _)| i).unwrap_or(fallback)
                    };
                    let chosen = children[chosen_idx];
                    // Stage the weight along the path before the assignment
                    // is published below.
                    tree_weights[chosen as usize].fetch_add(node_weight, Ordering::AcqRel);
                    cur = chosen;
                }
                let block = tree.leaf_block(cur).expect("descent ends at a leaf");
                assignments[v as usize].store(block, Ordering::Release);
                if block != old {
                    local_moved += 1;
                }
            }
            if local_moved > 0 {
                moved.fetch_add(local_moved, Ordering::Relaxed);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::onepass::{Fennel, StreamingPartitioner};
    use crate::{HierarchySpec, OmsConfig};
    use oms_gen::planted_partition;

    #[test]
    fn parallel_hashing_matches_sequential_hashing() {
        let g = planted_partition(300, 4, 0.1, 0.01, 3);
        let cfg = OnePassConfig::default().seed(7);
        let seq = crate::Hashing::new(8, cfg).partition_graph(&g).unwrap();
        let par = hashing_parallel(&g, 8, cfg, 4).unwrap();
        assert_eq!(
            seq, par,
            "hashing is deterministic, threads must not matter"
        );
    }

    #[test]
    fn parallel_fennel_produces_valid_balanced_partition() {
        let g = planted_partition(600, 8, 0.1, 0.005, 5);
        let p =
            onepass_parallel(&g, 8, FlatObjective::Fennel, OnePassConfig::default(), 4).unwrap();
        assert_eq!(p.num_nodes(), 600);
        assert!(p.validate(&vec![1; 600]));
        assert!(p.imbalance() < 0.1, "imbalance {}", p.imbalance());
    }

    #[test]
    fn parallel_ldg_produces_valid_partition() {
        let g = planted_partition(400, 8, 0.1, 0.01, 7);
        let p = onepass_parallel(&g, 8, FlatObjective::Ldg, OnePassConfig::default(), 3).unwrap();
        assert_eq!(p.num_nodes(), 400);
        assert!(p.imbalance() < 0.2);
    }

    #[test]
    fn parallel_fennel_single_thread_matches_sequential() {
        // With one thread the chunked driver processes nodes in natural
        // order, so it must coincide with the sequential implementation.
        let g = planted_partition(300, 8, 0.12, 0.01, 9);
        let cfg = OnePassConfig::default();
        let seq = Fennel::new(8, cfg).partition_graph(&g).unwrap();
        let par = onepass_parallel(&g, 8, FlatObjective::Fennel, cfg, 1).unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn parallel_oms_single_thread_matches_sequential() {
        let g = planted_partition(300, 8, 0.12, 0.01, 11);
        let oms = crate::OnlineMultiSection::flat(8, OmsConfig::default()).unwrap();
        let seq = oms.partition_graph(&g).unwrap();
        let par = oms.partition_graph_parallel(&g, 1).unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn parallel_oms_many_threads_still_beats_hashing() {
        let g = planted_partition(800, 16, 0.08, 0.003, 13);
        let h = HierarchySpec::parse("4:4").unwrap();
        let oms = crate::OnlineMultiSection::with_hierarchy(h, OmsConfig::default());
        let p = oms.partition_graph_parallel(&g, 8).unwrap();
        let hash = hashing_parallel(&g, 16, OnePassConfig::default(), 8).unwrap();
        assert_eq!(p.num_nodes(), 800);
        assert!(p.validate(&vec![1; 800]));
        assert!(p.edge_cut(&g) < hash.edge_cut(&g));
        // Atomic weight updates keep the imbalance low even under contention.
        assert!(p.imbalance() < 0.25, "imbalance {}", p.imbalance());
    }

    #[test]
    fn parallel_fennel_balances_skewed_degrees_across_threads() {
        // A graph with a few hubs: the edge-mass chunking must still produce
        // a valid, reasonably balanced partition.
        let g = oms_gen::barabasi_albert(800, 6, 11);
        let p =
            onepass_parallel(&g, 8, FlatObjective::Fennel, OnePassConfig::default(), 4).unwrap();
        assert_eq!(p.num_nodes(), 800);
        assert!(p.validate(&vec![1; 800]));
        assert!(p.imbalance() < 0.25, "imbalance {}", p.imbalance());
    }

    #[test]
    fn parallel_oms_on_empty_graph() {
        let g = CsrGraph::empty(0);
        let oms = crate::OnlineMultiSection::flat(4, OmsConfig::default()).unwrap();
        let p = oms.partition_graph_parallel(&g, 4).unwrap();
        assert_eq!(p.num_nodes(), 0);
    }

    #[test]
    fn move_protocol_never_understates_a_visible_assignment() {
        // Regression for the unassign ordering bug: the kernels used to
        // `fetch_sub` the weight *before* clearing the assignment slot,
        // leaving a window where a concurrent scorer saw the node in its
        // block but its weight already gone from the load vector. The fixed
        // protocol is: swap the slot to UNASSIGNED, then subtract; add,
        // then publish the new assignment. This walks every observation
        // point of that four-step protocol and checks the invariant scoring
        // threads rely on — whenever the slot points at a block, the
        // block's weight includes the node (overstatement is allowed,
        // understatement never).
        let w = 5u64;
        let slot = AtomicU32::new(0);
        let weights = [AtomicU64::new(w), AtomicU64::new(0)];
        let check = |step: &str| {
            let b = slot.load(Ordering::Acquire);
            if b != UNASSIGNED {
                assert!(
                    weights[b as usize].load(Ordering::Acquire) >= w,
                    "block {b} visibly underweighted after {step}"
                );
            }
        };
        check("init");
        // Step 1: publish the unassignment first (kernel: swap).
        let old = slot.swap(UNASSIGNED, Ordering::AcqRel);
        assert_eq!(old, 0);
        check("swap");
        // Step 2: only then retire the weight.
        weights[old as usize].fetch_sub(w, Ordering::AcqRel);
        check("fetch_sub");
        // Step 3: stage the weight in the target block...
        weights[1].fetch_add(w, Ordering::AcqRel);
        check("fetch_add");
        // Step 4: ...and only then publish the assignment.
        slot.store(1, Ordering::Release);
        check("store");
    }

    #[test]
    fn parallel_restream_stress_stays_consistent() {
        // Multi-threaded, multi-pass restreaming under contention: whatever
        // interleaving the threads produce, the unassign/assign protocol
        // must keep the shared load vector consistent enough that the final
        // partition is complete and within the racy-capacity slack. An
        // ordering bug here shows up as a u64 wrap-around (a block weight
        // near 2^64 makes every block look full and the fallback path
        // explodes the imbalance) or as systematic capacity overshoot.
        let g = planted_partition(600, 8, 0.1, 0.01, 29);
        for seed in 0..4 {
            let cfg = OnePassConfig::default().seed(seed);
            let (p, trajectory) =
                onepass_parallel_restream(&g, 8, FlatObjective::Fennel, cfg, 4, 3, 0.0, true)
                    .unwrap();
            assert_eq!(p.num_nodes(), 600);
            assert!(p.validate(&vec![1; 600]));
            assert!(p.imbalance() < 0.25, "imbalance {}", p.imbalance());
            assert!(trajectory.is_non_increasing(), "{trajectory:?}");
        }
    }
}
