//! The batch executor: one drive loop for every partitioner.
//!
//! Before this module existed, `oms.rs`, `onepass.rs`, `restream.rs` and
//! `parallel.rs` each hand-rolled their own loop over a [`NodeStream`]; now
//! they all plug a [`NodeSink`] (their scoring/assignment state) into a
//! [`BatchExecutor`] and never touch the stream themselves. Dispatch comes
//! in three shapes:
//!
//! * **sequential**, feeding the sink node by node in stream order (so the
//!   result is byte-identical to the classic per-node path). The nodes are
//!   served through [`NodeStream::for_each_node`], which batched sources
//!   implement on top of their batch reader — a disk stream still decodes
//!   batch `B+1` on its reader thread while the sink scores batch `B`,
//!   while in-memory sources stay zero-copy;
//! * **parallel** over an in-memory graph, splitting the node range into
//!   contiguous chunks of roughly equal *edge mass* (not node count — skewed
//!   degree distributions would otherwise load-imbalance the threads) and
//!   running one chunk per rayon task;
//! * **batch-wise** ([`BatchExecutor::run_batches`]), handing whole
//!   [`NodeBatch`]es to buffered algorithms that solve each batch as a
//!   model graph.
//!
//! Restreaming is a first-class concept: [`BatchExecutor::run_restream`]
//! drives `P` passes over the same (rewound) stream, calling
//! [`NodeSink::begin_pass`] before each one so multi-pass algorithms reuse
//! the same sink, and — for sinks that expose their assignment array —
//! records a per-pass [`PassStats`] trajectory, stops early once the
//! partition converges (no node moved, or the edge-cut improvement dropped
//! below the configured threshold) and reverts a pass that made the cut
//! worse.

use crate::partition::UNASSIGNED;
use crate::{BlockId, Result};
use oms_graph::{CsrGraph, NodeBatch, NodeId, NodeStream, StreamedNode};
use oms_obs::{CounterId, Event, HistId, Stopwatch};
use rayon::prelude::*;

/// Default number of nodes the executor pulls per batch.
pub const DEFAULT_BATCH_SIZE: usize = oms_graph::DEFAULT_BATCH_SIZE;

/// How many chunks each thread gets on average in the parallel dispatch;
/// more chunks smooth residual load imbalance.
const CHUNKS_PER_THREAD: usize = 8;

/// A consumer of streamed nodes: the per-algorithm scoring/assignment state
/// that the executor drives.
pub trait NodeSink {
    /// Called once before each pass (`pass` counts from 0). Restreaming
    /// sinks use this to switch into unassign-then-reassign mode.
    fn begin_pass(&mut self, pass: usize) {
        let _ = pass;
    }

    /// Consumes the next node of the stream.
    fn process(&mut self, node: StreamedNode<'_>);

    /// Called once after the last node of each pass, *before* the executor
    /// reads [`NodeSink::assignments`] for the pass's statistics. Sinks that
    /// buffer nodes internally (the sharded engine's round buffers) use this
    /// to flush the partial final round; the default does nothing.
    fn end_pass(&mut self, pass: usize) {
        let _ = pass;
    }

    /// The sink's current per-node assignment array, when it maintains one.
    ///
    /// Sinks that return `Some` opt into the multi-pass quality machinery of
    /// [`BatchExecutor::run_restream`]: per-pass edge-cut/imbalance stats,
    /// moved-node counting, convergence-based early exit and the
    /// revert-on-worsen guard. Returning `None` (the default) falls back to
    /// plain fixed-pass execution.
    fn assignments(&self) -> Option<&[BlockId]> {
        None
    }

    /// Number of blocks the sink assigns into (used for the imbalance of
    /// per-pass stats); `0` when unknown.
    fn num_blocks(&self) -> u32 {
        0
    }

    /// Restores a previously observed assignment array (same length as
    /// [`NodeSink::assignments`]), rebuilding any derived state (block or
    /// tree weights). Returns `false` when the sink does not support
    /// restoration — the executor then keeps the current (worse) pass
    /// instead of reverting.
    fn restore(&mut self, assignments: &[BlockId]) -> bool {
        let _ = assignments;
        false
    }
}

/// Quality and movement statistics of one accepted restreaming pass.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PassStats {
    /// Pass index (0 = the initial streaming pass).
    pub pass: usize,
    /// Edge-cut of the assignment after this pass.
    pub edge_cut: u64,
    /// Imbalance `max_i c(V_i)/(c(V)/k) − 1` after this pass.
    pub imbalance: f64,
    /// Number of nodes whose block changed in this pass, compared with the
    /// state before the pass (`n` for the initial pass of a fresh run,
    /// where every node goes from unassigned to assigned; `0` for a
    /// measured seed partition).
    pub moved: usize,
    /// Wall time of the pass itself (metric passes excluded), in seconds
    /// (`0.0` for a measured seed partition).
    pub seconds: f64,
}

/// The outcome of a multi-pass run: the per-pass quality trajectory and
/// whether the engine stopped before exhausting its pass budget.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PassTrajectory {
    /// Stats of every *accepted* pass, in order. A pass that worsened the
    /// edge cut is reverted and not recorded. Empty when the sink does not
    /// expose assignments (untracked run).
    pub stats: Vec<PassStats>,
    /// Whether the run stopped before its pass budget was exhausted (no
    /// node moved, improvement below the threshold, or a reverted pass).
    pub converged: bool,
}

impl PassTrajectory {
    /// Final edge-cut of the run, when the trajectory was tracked.
    pub fn final_edge_cut(&self) -> Option<u64> {
        self.stats.last().map(|s| s.edge_cut)
    }

    /// Number of accepted passes.
    pub fn num_passes(&self) -> usize {
        self.stats.len()
    }

    /// Whether every recorded pass kept or improved the edge cut.
    pub fn is_non_increasing(&self) -> bool {
        self.stats
            .windows(2)
            .all(|w| w[1].edge_cut <= w[0].edge_cut)
    }
}

/// Configuration of a multi-pass restreaming run.
#[derive(Clone, Copy, Debug)]
pub struct RestreamOptions {
    /// Maximum number of passes (≥ 1).
    pub passes: usize,
    /// Relative edge-cut improvement below which the run stops (`0.02` =
    /// stop once a pass improves the cut by less than 2 %). `0.0` disables
    /// the threshold; the run still stops when no node moves at all.
    pub min_improvement: f64,
    /// Whether to measure per-pass quality (one extra metric pass over the
    /// stream per partitioning pass). Without tracking the engine runs the
    /// fixed number of passes and returns an empty trajectory.
    pub track_quality: bool,
    /// Known `(edge_cut, imbalance)` of the seed baseline, for callers that
    /// already maintain these incrementally (the dynamic layer). When set,
    /// the seeded engine records them instead of recounting the cut with an
    /// extra full metric pass; debug builds still walk the stream once and
    /// assert agreement.
    pub seed_stats: Option<(u64, f64)>,
}

impl RestreamOptions {
    /// A fixed-pass run without quality tracking (the classic behavior of
    /// multi-pass restreaming).
    pub fn fixed(passes: usize) -> Self {
        RestreamOptions {
            passes: passes.max(1),
            min_improvement: 0.0,
            track_quality: false,
            seed_stats: None,
        }
    }

    /// A tracked run: per-pass stats, early exit and the revert guard.
    pub fn tracked(passes: usize, min_improvement: f64) -> Self {
        RestreamOptions {
            passes: passes.max(1),
            min_improvement: min_improvement.max(0.0),
            track_quality: true,
            seed_stats: None,
        }
    }

    /// Declares the seed baseline's already-known `(edge_cut, imbalance)`,
    /// eliminating the engine's seed-measurement pass.
    pub fn with_seed_stats(mut self, edge_cut: u64, imbalance: f64) -> Self {
        self.seed_stats = Some((edge_cut, imbalance));
        self
    }
}

/// The verdict of [`PassTracker::observe`] for one measured pass.
#[derive(Clone, Debug, PartialEq)]
pub enum PassOutcome {
    /// The pass kept or improved the best cut and the run has budget left:
    /// keep going.
    Continue,
    /// The run converged (fixed point, improvement below the threshold, or
    /// a zero cut): stop; the current assignment stands and is recorded.
    Stop,
    /// The pass worsened the cut: restore the contained (best) assignment,
    /// then stop. A driver whose state cannot be restored must call
    /// [`PassTracker::accept_unreverted`] with the worsened pass instead,
    /// so the trajectory still ends on the assignment actually returned.
    Revert(Vec<BlockId>),
}

/// The accept / converge / revert bookkeeping shared by every multi-pass
/// driver (the sequential engine, the parallel kernels, the buffered
/// algorithm): feed it one measured pass at a time, act on the returned
/// [`PassOutcome`], and take the trajectory at the end. Keeping the rules
/// in one place guarantees that `passes=N` means the same thing no matter
/// how an algorithm drives its passes.
#[derive(Clone, Debug)]
pub struct PassTracker {
    opts: RestreamOptions,
    trajectory: PassTrajectory,
    best: Option<(u64, Vec<BlockId>)>,
    pass_no: usize,
}

impl PassTracker {
    /// A tracker for one run under `opts`.
    pub fn new(opts: RestreamOptions) -> Self {
        PassTracker {
            opts,
            trajectory: PassTrajectory::default(),
            best: None,
            pass_no: 0,
        }
    }

    /// Records a pre-existing partition as pass 0 of the trajectory (used
    /// when the passes refine a seed solution); the revert guard then
    /// protects the seed. Returns `true` when the seed is already optimal
    /// (cut 0) and no pass needs to run.
    pub fn seed(&mut self, edge_cut: u64, imbalance: f64, snapshot: &[BlockId]) -> bool {
        self.trajectory.stats.push(PassStats {
            pass: 0,
            edge_cut,
            imbalance,
            moved: 0,
            seconds: 0.0,
        });
        self.best = Some((edge_cut, snapshot.to_vec()));
        self.pass_no = 1;
        if edge_cut == 0 {
            self.trajectory.converged = true;
            return true;
        }
        false
    }

    /// Records one measured pass (`snapshot` is the assignment it
    /// produced) and decides how the run continues. `last_pass` marks the
    /// final budgeted pass, so the trajectory can distinguish early
    /// convergence from an exhausted budget.
    pub fn observe(
        &mut self,
        last_pass: bool,
        moved: usize,
        seconds: f64,
        edge_cut: u64,
        imbalance: f64,
        snapshot: &[BlockId],
    ) -> PassOutcome {
        if let Some((best_cut, best_assign)) = &self.best {
            if edge_cut > *best_cut {
                self.trajectory.converged = true;
                return PassOutcome::Revert(best_assign.clone());
            }
        }
        self.trajectory.stats.push(PassStats {
            pass: self.pass_no,
            edge_cut,
            imbalance,
            moved,
            seconds,
        });
        let improvement_too_small = match &self.best {
            Some((best_cut, _)) => {
                let gained = best_cut.saturating_sub(edge_cut) as f64;
                self.opts.min_improvement > 0.0
                    && gained < self.opts.min_improvement * (*best_cut).max(1) as f64
            }
            None => false,
        };
        if self.best.as_ref().is_none_or(|(c, _)| edge_cut <= *c) {
            self.best = Some((edge_cut, snapshot.to_vec()));
        }
        let has_prev_state = self.pass_no > 0;
        self.pass_no += 1;
        if has_prev_state && (moved == 0 || improvement_too_small) || edge_cut == 0 {
            self.trajectory.converged = !last_pass;
            return PassOutcome::Stop;
        }
        PassOutcome::Continue
    }

    /// Records a worsened pass whose state could *not* be rolled back
    /// (the sink does not support [`NodeSink::restore`]): the pass enters
    /// the trajectory as-is — breaking monotonicity, but keeping the
    /// invariant that the last recorded entry is the assignment actually
    /// returned.
    pub fn accept_unreverted(&mut self, moved: usize, seconds: f64, edge_cut: u64, imbalance: f64) {
        self.trajectory.stats.push(PassStats {
            pass: self.pass_no,
            edge_cut,
            imbalance,
            moved,
            seconds,
        });
        self.pass_no += 1;
    }

    /// Edge cut of the best assignment seen so far (the one a revert
    /// restores), when any pass or seed has been recorded.
    pub fn best_cut(&self) -> Option<u64> {
        self.best.as_ref().map(|(cut, _)| *cut)
    }

    /// The recorded trajectory.
    pub fn finish(self) -> PassTrajectory {
        self.trajectory
    }
}

/// Drives [`NodeSink`]s over node streams in batches.
///
/// `batch_size` governs the batch-wise dispatch ([`BatchExecutor::run_batches`],
/// i.e. how many nodes a buffered algorithm sees per model graph). The
/// per-node dispatches ([`BatchExecutor::run`] / [`BatchExecutor::run_passes`])
/// deliver nodes through [`NodeStream::for_each_node`], where each source
/// picks its own ingest batching (e.g. `DiskStream::read_batch_size`).
#[derive(Clone, Copy, Debug)]
pub struct BatchExecutor {
    batch_size: usize,
}

impl Default for BatchExecutor {
    fn default() -> Self {
        BatchExecutor {
            batch_size: DEFAULT_BATCH_SIZE,
        }
    }
}

impl BatchExecutor {
    /// An executor handing `batch_size` nodes per batch to the batch-wise
    /// dispatch ([`BatchExecutor::run_batches`]); the per-node dispatches
    /// are unaffected (see the type-level docs).
    pub fn new(batch_size: usize) -> Self {
        BatchExecutor {
            batch_size: batch_size.max(1),
        }
    }

    /// Nodes handed per batch by [`BatchExecutor::run_batches`].
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// One sequential pass: pulls batches and feeds `sink` in stream order.
    pub fn run(&self, stream: &mut dyn NodeStream, sink: &mut dyn NodeSink) -> Result<()> {
        self.run_passes(stream, sink, 1)
    }

    /// `passes` sequential passes over the same stream (restreaming),
    /// without quality tracking. See [`BatchExecutor::run_restream`] for the
    /// converging variant.
    pub fn run_passes(
        &self,
        stream: &mut dyn NodeStream,
        sink: &mut dyn NodeSink,
        passes: usize,
    ) -> Result<()> {
        self.run_restream(stream, sink, &RestreamOptions::fixed(passes))
            .map(|_| ())
    }

    /// The multi-pass restreaming engine: up to [`RestreamOptions::passes`]
    /// sequential passes over the same stream, rewinding it
    /// ([`NodeStream::reset`]) before every additional pass.
    ///
    /// From the second pass on, the sink re-scores every node against the
    /// previous pass's assignment (its [`NodeSink::begin_pass`] switches it
    /// into unassign-then-reassign mode). When quality tracking is enabled
    /// and the sink exposes its assignments, each pass is followed by one
    /// metric pass measuring edge-cut and imbalance, and the engine
    ///
    /// * stops once no node moved in a pass (the run has reached a fixed
    ///   point — all further passes would reproduce it exactly),
    /// * stops once the relative cut improvement falls below
    ///   [`RestreamOptions::min_improvement`], and
    /// * reverts a pass that *worsened* the cut (restreaming is greedy and
    ///   can overshoot) through [`NodeSink::restore`], keeping the best
    ///   assignment seen.
    ///
    /// A single-pass run (`passes == 1`) performs exactly the same stream
    /// pass as [`BatchExecutor::run`]; tracking only adds the metric pass.
    pub fn run_restream(
        &self,
        stream: &mut dyn NodeStream,
        sink: &mut dyn NodeSink,
        opts: &RestreamOptions,
    ) -> Result<PassTrajectory> {
        self.run_restream_seeded(stream, sink, opts, None)
    }

    /// [`BatchExecutor::run_restream`] for a sink seeded from an existing
    /// partition (`baseline`): the baseline is measured and recorded as
    /// pass 0 of the trajectory, and the revert-on-worsen guard protects it
    /// — the run never returns an assignment worse than the seed. Used by
    /// the in-memory algorithms whose additional passes are restreaming
    /// refinement of their one-shot solution.
    pub fn run_restream_seeded(
        &self,
        stream: &mut dyn NodeStream,
        sink: &mut dyn NodeSink,
        opts: &RestreamOptions,
        baseline: Option<&[BlockId]>,
    ) -> Result<PassTrajectory> {
        let passes = opts.passes.max(1);
        let tracked = opts.track_quality && sink.assignments().is_some();
        let mut tracker = PassTracker::new(*opts);
        let mut prev_assign: Vec<BlockId> = Vec::new();
        // The stream starts rewound; every use after the first must rewind
        // it again.
        let mut needs_reset = false;
        let reset = |stream: &mut dyn NodeStream, needs_reset: &mut bool| -> Result<()> {
            if *needs_reset {
                stream.reset()?;
            }
            *needs_reset = true;
            Ok(())
        };

        if tracked {
            if let Some(seed) = baseline {
                let (edge_cut, imbalance) = match opts.seed_stats {
                    Some((cut, imbalance)) => {
                        // The caller maintains the seed's cut incrementally;
                        // trust it instead of recounting with a full walk —
                        // but verify the bookkeeping in debug builds.
                        #[cfg(debug_assertions)]
                        {
                            reset(stream, &mut needs_reset)?;
                            let (measured, _) = measure_pass(stream, seed, sink.num_blocks())?;
                            debug_assert_eq!(
                                measured, cut,
                                "incrementally maintained seed cut disagrees with a \
                                 measured metric pass"
                            );
                        }
                        (cut, imbalance)
                    }
                    None => {
                        reset(stream, &mut needs_reset)?;
                        measure_pass(stream, seed, sink.num_blocks())?
                    }
                };
                if tracker.seed(edge_cut, imbalance, seed) {
                    return Ok(tracker.finish());
                }
            }
        }

        for i in 0..passes {
            reset(stream, &mut needs_reset)?;
            if tracked {
                prev_assign.clear();
                prev_assign.extend_from_slice(sink.assignments().expect("tracked"));
            }

            sink.begin_pass(i);
            oms_obs::observe(Event::PassStart { pass: i as u32 });
            let clock = Stopwatch::start();
            // for_each_node, not for_each_batch: in-memory sources serve
            // borrowed CSR slices with no copy, and sources with real
            // ingest (disk) implement it on top of their batched —
            // double-buffered — reader anyway.
            let mut pass_nodes = 0u64;
            stream.for_each_node(&mut |node| {
                pass_nodes += 1;
                sink.process(node)
            })?;
            // Flush before the timing stops: a buffering sink's flush is
            // part of the pass's work, and `assignments` below must see the
            // complete pass.
            sink.end_pass(i);
            let seconds = clock.seconds();
            oms_obs::counter_add(CounterId::RestreamPasses, 1);
            oms_obs::hist_record(HistId::PassMicros, (seconds * 1e6) as u64);

            if !tracked {
                oms_obs::observe(Event::PassEnd {
                    pass: i as u32,
                    nodes: pass_nodes,
                    edge_cut: 0,
                    moved: 0,
                });
                continue;
            }
            let assignments = sink.assignments().expect("tracked");
            let moved = prev_assign
                .iter()
                .zip(assignments)
                .filter(|(a, b)| a != b)
                .count();
            reset(stream, &mut needs_reset)?;
            let (edge_cut, imbalance) = measure_pass(stream, assignments, sink.num_blocks())?;
            let accepted = Event::PassEnd {
                pass: i as u32,
                nodes: pass_nodes,
                edge_cut,
                moved: moved as u64,
            };
            match tracker.observe(
                i + 1 == passes,
                moved,
                seconds,
                edge_cut,
                imbalance,
                assignments,
            ) {
                PassOutcome::Continue => {
                    oms_obs::observe(accepted);
                    oms_obs::hist_record(HistId::PassMoved, moved as u64);
                }
                PassOutcome::Stop => {
                    oms_obs::observe(accepted);
                    oms_obs::hist_record(HistId::PassMoved, moved as u64);
                    break;
                }
                PassOutcome::Revert(best) => {
                    // The pass overshot; put the best assignment back. A
                    // sink without restore support keeps the worse state —
                    // record it so the trajectory ends on what is returned.
                    if !sink.restore(&best) {
                        tracker.accept_unreverted(moved, seconds, edge_cut, imbalance);
                        oms_obs::observe(accepted);
                    } else {
                        oms_obs::counter_add(CounterId::RestreamReverts, 1);
                        oms_obs::observe(Event::PassReverted {
                            pass: i as u32,
                            kept_cut: tracker.best_cut().unwrap_or(edge_cut),
                        });
                    }
                    break;
                }
            }
        }
        Ok(tracker.finish())
    }

    /// One sequential pass delivering whole batches (used by the buffered
    /// algorithms, which build a model graph per batch instead of scoring
    /// node by node).
    pub fn run_batches(
        &self,
        stream: &mut dyn NodeStream,
        f: &mut dyn FnMut(&NodeBatch),
    ) -> Result<()> {
        let mut batch_index = 0u64;
        stream.for_each_batch(self.batch_size, &mut |batch| {
            f(batch);
            oms_obs::observe(Event::BatchScored {
                batch: batch_index,
                nodes: batch.len() as u64,
            });
            batch_index += 1;
        })?;
        Ok(())
    }

    /// Parallel dispatch over an in-memory graph (§3.4 of the paper): the
    /// node range is split into edge-mass-balanced contiguous chunks and
    /// `process_range(lo, hi)` runs for each chunk on a pool of `threads`
    /// threads. The processor shares state through atomics.
    pub fn run_parallel<F>(&self, graph: &CsrGraph, threads: usize, process_range: F)
    where
        F: Fn(NodeId, NodeId) + Sync,
    {
        let n = graph.num_nodes();
        if n == 0 {
            return;
        }
        let chunks = (threads.max(1) * CHUNKS_PER_THREAD).min(n);
        let ranges = edge_balanced_ranges(graph, chunks);
        let pool = build_pool(threads);
        pool.install(|| {
            ranges
                .par_iter()
                .for_each(|&(lo, hi)| process_range(lo, hi));
        });
    }

    /// Like [`BatchExecutor::run_parallel`], but additionally hands each
    /// chunk the matching slice of a per-node output array, so
    /// embarrassingly parallel kernels (one independent write per node) can
    /// fill their results directly — no atomics, no collection copy.
    pub fn run_parallel_mut<T, F>(
        &self,
        graph: &CsrGraph,
        threads: usize,
        output: &mut [T],
        process_range: F,
    ) where
        T: Send,
        F: Fn(NodeId, NodeId, &mut [T]) + Sync,
    {
        let n = graph.num_nodes();
        assert_eq!(output.len(), n, "output must hold one slot per node");
        if n == 0 {
            return;
        }
        let chunks = (threads.max(1) * CHUNKS_PER_THREAD).min(n);
        let ranges = edge_balanced_ranges(graph, chunks);
        // Split `output` into the disjoint per-range windows.
        let mut tasks: Vec<((NodeId, NodeId), &mut [T])> = Vec::with_capacity(ranges.len());
        let mut rest = output;
        for &(lo, hi) in &ranges {
            let (window, tail) = rest.split_at_mut((hi - lo) as usize);
            tasks.push(((lo, hi), window));
            rest = tail;
        }
        let pool = build_pool(threads);
        pool.install(|| {
            tasks
                .par_iter_mut()
                .for_each(|((lo, hi), window)| process_range(*lo, *hi, window));
        });
    }
}

/// One metric pass over the stream: edge-cut of `assignments` (each
/// undirected edge is seen from both endpoints, so the doubled sum is
/// halved) and imbalance over `k` blocks (`k == 0` derives the block count
/// from the assignments). Unassigned nodes count towards the cut of every
/// incident edge and towards no block.
pub fn measure_pass(
    stream: &mut dyn NodeStream,
    assignments: &[BlockId],
    k: u32,
) -> Result<(u64, f64)> {
    let k = if k == 0 {
        assignments
            .iter()
            .filter(|&&b| b != UNASSIGNED)
            .map(|&b| b + 1)
            .max()
            .unwrap_or(1)
    } else {
        k
    };
    let mut block_weights = vec![0u64; k as usize];
    let mut total = 0u64;
    let mut twice = 0u64;
    stream.for_each_node(&mut |node| {
        let own = assignments[node.node as usize];
        total += node.weight;
        if own != UNASSIGNED {
            block_weights[own as usize] += node.weight;
        }
        for (u, w) in node.neighbors_weighted() {
            // An unassigned endpoint makes the edge cut regardless of the
            // other side (including two unassigned endpoints).
            if own == UNASSIGNED || assignments[u as usize] != own {
                twice += w;
            }
        }
    })?;
    let max = block_weights.iter().copied().max().unwrap_or(0);
    let average = total as f64 / k.max(1) as f64;
    let imbalance = if average > 0.0 {
        max as f64 / average - 1.0
    } else {
        0.0
    };
    Ok((twice / 2, imbalance))
}

/// Builds the rayon pool used by the parallel dispatch.
pub(crate) fn build_pool(threads: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads.max(1))
        .build()
        .expect("failed to build rayon thread pool")
}

/// Splits `0..n` into at most `num_chunks` contiguous ranges of roughly
/// equal **edge mass**. Each node costs `degree(v) + 1` (the `+1` keeps
/// isolated nodes from collapsing into one giant chunk), so a chunk holding
/// a hub node stays short while low-degree regions get wide chunks —
/// balancing per-thread scoring work instead of node counts.
pub fn edge_balanced_ranges(graph: &CsrGraph, num_chunks: usize) -> Vec<(NodeId, NodeId)> {
    let n = graph.num_nodes();
    if n == 0 || num_chunks == 0 {
        return Vec::new();
    }
    let num_chunks = num_chunks.min(n);
    let total_mass: u64 = 2 * graph.num_edges() as u64 + n as u64;
    let mut ranges = Vec::with_capacity(num_chunks);
    let mut lo = 0u32;
    let mut mass_done = 0u64;
    let mut mass_in_chunk = 0u64;
    for v in 0..n as u32 {
        mass_in_chunk += graph.degree(v) as u64 + 1;
        // Target boundary for the chunk being built: distribute the
        // remaining mass evenly over the remaining chunks.
        let chunks_left = num_chunks - ranges.len();
        let target = (total_mass - mass_done).div_ceil(chunks_left as u64);
        let nodes_left = n as u32 - (v + 1);
        if mass_in_chunk >= target && ranges.len() + 1 < num_chunks
            // Never create more chunks than there are nodes left to fill them.
            && nodes_left as usize >= num_chunks - ranges.len() - 1
        {
            ranges.push((lo, v + 1));
            lo = v + 1;
            mass_done += mass_in_chunk;
            mass_in_chunk = 0;
        }
    }
    ranges.push((lo, n as u32));
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;
    use oms_graph::{GraphBuilder, InMemoryStream};

    #[test]
    fn edge_balanced_ranges_cover_everything_exactly_once() {
        let g = oms_gen::planted_partition(500, 8, 0.1, 0.01, 3);
        for chunks in [1usize, 3, 8, 32, 499, 500, 10_000] {
            let ranges = edge_balanced_ranges(&g, chunks);
            assert!(!ranges.is_empty());
            assert!(ranges.len() <= chunks.min(500));
            assert_eq!(ranges[0].0, 0);
            assert_eq!(ranges.last().unwrap().1, 500);
            let total: usize = ranges.iter().map(|&(lo, hi)| (hi - lo) as usize).sum();
            assert_eq!(total, 500);
            for w in ranges.windows(2) {
                assert_eq!(w[0].1, w[1].0);
                assert!(w[0].0 < w[0].1, "empty range");
            }
        }
    }

    #[test]
    fn edge_balanced_ranges_handle_empty_graph() {
        let g = oms_graph::CsrGraph::empty(0);
        assert!(edge_balanced_ranges(&g, 4).is_empty());
    }

    #[test]
    fn edge_balanced_ranges_shorten_chunks_around_hubs() {
        // A star: node 0 has degree 999, everything else degree 1. With
        // node-count chunking, the chunk holding node 0 would carry ~50 % of
        // the edge mass; edge-mass chunking isolates the hub instead.
        let mut b = GraphBuilder::new(1000);
        for v in 1..1000u32 {
            b.add_edge(0, v).unwrap();
        }
        let g = b.build();
        let ranges = edge_balanced_ranges(&g, 8);
        let first = ranges[0];
        assert_eq!(first.0, 0);
        assert!(
            (first.1 - first.0) < 125,
            "hub chunk should be short, got {:?}",
            first
        );
        let mass =
            |&(lo, hi): &(u32, u32)| -> u64 { (lo..hi).map(|v| g.degree(v) as u64 + 1).sum() };
        let masses: Vec<u64> = ranges.iter().map(mass).collect();
        let max = *masses.iter().max().unwrap();
        let total: u64 = masses.iter().sum();
        let even = total.div_ceil(ranges.len() as u64);
        assert!(
            max <= 2 * even + 1000, // the hub alone outweighs an even share
            "worst chunk mass {max} vs even share {even}"
        );
    }

    #[test]
    fn executor_feeds_sink_in_stream_order() {
        struct Collect(Vec<NodeId>, usize);
        impl NodeSink for Collect {
            fn begin_pass(&mut self, pass: usize) {
                self.1 = pass + 1;
            }
            fn process(&mut self, node: StreamedNode<'_>) {
                self.0.push(node.node);
            }
        }
        let g = oms_gen::planted_partition(97, 4, 0.2, 0.02, 1);
        let mut sink = Collect(Vec::new(), 0);
        BatchExecutor::new(16)
            .run(&mut InMemoryStream::new(&g), &mut sink)
            .unwrap();
        assert_eq!(sink.0, (0..97).collect::<Vec<NodeId>>());
        assert_eq!(sink.1, 1);

        sink.0.clear();
        BatchExecutor::new(10)
            .run_passes(&mut InMemoryStream::new(&g), &mut sink, 3)
            .unwrap();
        assert_eq!(sink.0.len(), 3 * 97);
        assert_eq!(sink.1, 3);
    }

    #[test]
    fn run_parallel_visits_every_node_once() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let g = oms_gen::planted_partition(321, 4, 0.1, 0.02, 5);
        let visits: Vec<AtomicU32> = (0..321).map(|_| AtomicU32::new(0)).collect();
        BatchExecutor::default().run_parallel(&g, 4, |lo, hi| {
            for v in lo..hi {
                visits[v as usize].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(visits.iter().all(|v| v.load(Ordering::Relaxed) == 1));
    }
}
