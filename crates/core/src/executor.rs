//! The batch executor: one drive loop for every partitioner.
//!
//! Before this module existed, `oms.rs`, `onepass.rs`, `restream.rs` and
//! `parallel.rs` each hand-rolled their own loop over a [`NodeStream`]; now
//! they all plug a [`NodeSink`] (their scoring/assignment state) into a
//! [`BatchExecutor`] and never touch the stream themselves. Dispatch comes
//! in three shapes:
//!
//! * **sequential**, feeding the sink node by node in stream order (so the
//!   result is byte-identical to the classic per-node path). The nodes are
//!   served through [`NodeStream::for_each_node`], which batched sources
//!   implement on top of their batch reader — a disk stream still decodes
//!   batch `B+1` on its reader thread while the sink scores batch `B`,
//!   while in-memory sources stay zero-copy;
//! * **parallel** over an in-memory graph, splitting the node range into
//!   contiguous chunks of roughly equal *edge mass* (not node count — skewed
//!   degree distributions would otherwise load-imbalance the threads) and
//!   running one chunk per rayon task;
//! * **batch-wise** ([`BatchExecutor::run_batches`]), handing whole
//!   [`NodeBatch`]es to buffered algorithms that solve each batch as a
//!   model graph.
//!
//! Restreaming is a first-class concept: [`BatchExecutor::run_passes`] calls
//! [`NodeSink::begin_pass`] before each pass, so multi-pass algorithms reuse
//! the same sink.

use crate::Result;
use oms_graph::{CsrGraph, NodeBatch, NodeId, NodeStream, StreamedNode};
use rayon::prelude::*;

/// Default number of nodes the executor pulls per batch.
pub const DEFAULT_BATCH_SIZE: usize = oms_graph::DEFAULT_BATCH_SIZE;

/// How many chunks each thread gets on average in the parallel dispatch;
/// more chunks smooth residual load imbalance.
const CHUNKS_PER_THREAD: usize = 8;

/// A consumer of streamed nodes: the per-algorithm scoring/assignment state
/// that the executor drives.
pub trait NodeSink {
    /// Called once before each pass (`pass` counts from 0). Restreaming
    /// sinks use this to switch into unassign-then-reassign mode.
    fn begin_pass(&mut self, pass: usize) {
        let _ = pass;
    }

    /// Consumes the next node of the stream.
    fn process(&mut self, node: StreamedNode<'_>);
}

/// Drives [`NodeSink`]s over node streams in batches.
///
/// `batch_size` governs the batch-wise dispatch ([`BatchExecutor::run_batches`],
/// i.e. how many nodes a buffered algorithm sees per model graph). The
/// per-node dispatches ([`BatchExecutor::run`] / [`BatchExecutor::run_passes`])
/// deliver nodes through [`NodeStream::for_each_node`], where each source
/// picks its own ingest batching (e.g. `DiskStream::read_batch_size`).
#[derive(Clone, Copy, Debug)]
pub struct BatchExecutor {
    batch_size: usize,
}

impl Default for BatchExecutor {
    fn default() -> Self {
        BatchExecutor {
            batch_size: DEFAULT_BATCH_SIZE,
        }
    }
}

impl BatchExecutor {
    /// An executor handing `batch_size` nodes per batch to the batch-wise
    /// dispatch ([`BatchExecutor::run_batches`]); the per-node dispatches
    /// are unaffected (see the type-level docs).
    pub fn new(batch_size: usize) -> Self {
        BatchExecutor {
            batch_size: batch_size.max(1),
        }
    }

    /// Nodes handed per batch by [`BatchExecutor::run_batches`].
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// One sequential pass: pulls batches and feeds `sink` in stream order.
    pub fn run(&self, stream: &mut dyn NodeStream, sink: &mut dyn NodeSink) -> Result<()> {
        self.run_passes(stream, sink, 1)
    }

    /// `passes` sequential passes over the same stream (restreaming).
    pub fn run_passes(
        &self,
        stream: &mut dyn NodeStream,
        sink: &mut dyn NodeSink,
        passes: usize,
    ) -> Result<()> {
        for pass in 0..passes {
            sink.begin_pass(pass);
            // for_each_node, not for_each_batch: in-memory sources serve
            // borrowed CSR slices with no copy, and sources with real
            // ingest (disk) implement it on top of their batched —
            // double-buffered — reader anyway.
            stream.for_each_node(&mut |node| sink.process(node))?;
        }
        Ok(())
    }

    /// One sequential pass delivering whole batches (used by the buffered
    /// algorithms, which build a model graph per batch instead of scoring
    /// node by node).
    pub fn run_batches(
        &self,
        stream: &mut dyn NodeStream,
        f: &mut dyn FnMut(&NodeBatch),
    ) -> Result<()> {
        stream.for_each_batch(self.batch_size, f)?;
        Ok(())
    }

    /// Parallel dispatch over an in-memory graph (§3.4 of the paper): the
    /// node range is split into edge-mass-balanced contiguous chunks and
    /// `process_range(lo, hi)` runs for each chunk on a pool of `threads`
    /// threads. The processor shares state through atomics.
    pub fn run_parallel<F>(&self, graph: &CsrGraph, threads: usize, process_range: F)
    where
        F: Fn(NodeId, NodeId) + Sync,
    {
        let n = graph.num_nodes();
        if n == 0 {
            return;
        }
        let chunks = (threads.max(1) * CHUNKS_PER_THREAD).min(n);
        let ranges = edge_balanced_ranges(graph, chunks);
        let pool = build_pool(threads);
        pool.install(|| {
            ranges
                .par_iter()
                .for_each(|&(lo, hi)| process_range(lo, hi));
        });
    }

    /// Like [`BatchExecutor::run_parallel`], but additionally hands each
    /// chunk the matching slice of a per-node output array, so
    /// embarrassingly parallel kernels (one independent write per node) can
    /// fill their results directly — no atomics, no collection copy.
    pub fn run_parallel_mut<T, F>(
        &self,
        graph: &CsrGraph,
        threads: usize,
        output: &mut [T],
        process_range: F,
    ) where
        T: Send,
        F: Fn(NodeId, NodeId, &mut [T]) + Sync,
    {
        let n = graph.num_nodes();
        assert_eq!(output.len(), n, "output must hold one slot per node");
        if n == 0 {
            return;
        }
        let chunks = (threads.max(1) * CHUNKS_PER_THREAD).min(n);
        let ranges = edge_balanced_ranges(graph, chunks);
        // Split `output` into the disjoint per-range windows.
        let mut tasks: Vec<((NodeId, NodeId), &mut [T])> = Vec::with_capacity(ranges.len());
        let mut rest = output;
        for &(lo, hi) in &ranges {
            let (window, tail) = rest.split_at_mut((hi - lo) as usize);
            tasks.push(((lo, hi), window));
            rest = tail;
        }
        let pool = build_pool(threads);
        pool.install(|| {
            tasks
                .par_iter_mut()
                .for_each(|((lo, hi), window)| process_range(*lo, *hi, window));
        });
    }
}

/// Builds the rayon pool used by the parallel dispatch.
pub(crate) fn build_pool(threads: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads.max(1))
        .build()
        .expect("failed to build rayon thread pool")
}

/// Splits `0..n` into at most `num_chunks` contiguous ranges of roughly
/// equal **edge mass**. Each node costs `degree(v) + 1` (the `+1` keeps
/// isolated nodes from collapsing into one giant chunk), so a chunk holding
/// a hub node stays short while low-degree regions get wide chunks —
/// balancing per-thread scoring work instead of node counts.
pub fn edge_balanced_ranges(graph: &CsrGraph, num_chunks: usize) -> Vec<(NodeId, NodeId)> {
    let n = graph.num_nodes();
    if n == 0 || num_chunks == 0 {
        return Vec::new();
    }
    let num_chunks = num_chunks.min(n);
    let total_mass: u64 = 2 * graph.num_edges() as u64 + n as u64;
    let mut ranges = Vec::with_capacity(num_chunks);
    let mut lo = 0u32;
    let mut mass_done = 0u64;
    let mut mass_in_chunk = 0u64;
    for v in 0..n as u32 {
        mass_in_chunk += graph.degree(v) as u64 + 1;
        // Target boundary for the chunk being built: distribute the
        // remaining mass evenly over the remaining chunks.
        let chunks_left = num_chunks - ranges.len();
        let target = (total_mass - mass_done).div_ceil(chunks_left as u64);
        let nodes_left = n as u32 - (v + 1);
        if mass_in_chunk >= target && ranges.len() + 1 < num_chunks
            // Never create more chunks than there are nodes left to fill them.
            && nodes_left as usize >= num_chunks - ranges.len() - 1
        {
            ranges.push((lo, v + 1));
            lo = v + 1;
            mass_done += mass_in_chunk;
            mass_in_chunk = 0;
        }
    }
    ranges.push((lo, n as u32));
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;
    use oms_graph::{GraphBuilder, InMemoryStream};

    #[test]
    fn edge_balanced_ranges_cover_everything_exactly_once() {
        let g = oms_gen::planted_partition(500, 8, 0.1, 0.01, 3);
        for chunks in [1usize, 3, 8, 32, 499, 500, 10_000] {
            let ranges = edge_balanced_ranges(&g, chunks);
            assert!(!ranges.is_empty());
            assert!(ranges.len() <= chunks.min(500));
            assert_eq!(ranges[0].0, 0);
            assert_eq!(ranges.last().unwrap().1, 500);
            let total: usize = ranges.iter().map(|&(lo, hi)| (hi - lo) as usize).sum();
            assert_eq!(total, 500);
            for w in ranges.windows(2) {
                assert_eq!(w[0].1, w[1].0);
                assert!(w[0].0 < w[0].1, "empty range");
            }
        }
    }

    #[test]
    fn edge_balanced_ranges_handle_empty_graph() {
        let g = oms_graph::CsrGraph::empty(0);
        assert!(edge_balanced_ranges(&g, 4).is_empty());
    }

    #[test]
    fn edge_balanced_ranges_shorten_chunks_around_hubs() {
        // A star: node 0 has degree 999, everything else degree 1. With
        // node-count chunking, the chunk holding node 0 would carry ~50 % of
        // the edge mass; edge-mass chunking isolates the hub instead.
        let mut b = GraphBuilder::new(1000);
        for v in 1..1000u32 {
            b.add_edge(0, v).unwrap();
        }
        let g = b.build();
        let ranges = edge_balanced_ranges(&g, 8);
        let first = ranges[0];
        assert_eq!(first.0, 0);
        assert!(
            (first.1 - first.0) < 125,
            "hub chunk should be short, got {:?}",
            first
        );
        let mass =
            |&(lo, hi): &(u32, u32)| -> u64 { (lo..hi).map(|v| g.degree(v) as u64 + 1).sum() };
        let masses: Vec<u64> = ranges.iter().map(mass).collect();
        let max = *masses.iter().max().unwrap();
        let total: u64 = masses.iter().sum();
        let even = total.div_ceil(ranges.len() as u64);
        assert!(
            max <= 2 * even + 1000, // the hub alone outweighs an even share
            "worst chunk mass {max} vs even share {even}"
        );
    }

    #[test]
    fn executor_feeds_sink_in_stream_order() {
        struct Collect(Vec<NodeId>, usize);
        impl NodeSink for Collect {
            fn begin_pass(&mut self, pass: usize) {
                self.1 = pass + 1;
            }
            fn process(&mut self, node: StreamedNode<'_>) {
                self.0.push(node.node);
            }
        }
        let g = oms_gen::planted_partition(97, 4, 0.2, 0.02, 1);
        let mut sink = Collect(Vec::new(), 0);
        BatchExecutor::new(16)
            .run(&mut InMemoryStream::new(&g), &mut sink)
            .unwrap();
        assert_eq!(sink.0, (0..97).collect::<Vec<NodeId>>());
        assert_eq!(sink.1, 1);

        sink.0.clear();
        BatchExecutor::new(10)
            .run_passes(&mut InMemoryStream::new(&g), &mut sink, 3)
            .unwrap();
        assert_eq!(sink.0.len(), 3 * 97);
        assert_eq!(sink.1, 3);
    }

    #[test]
    fn run_parallel_visits_every_node_once() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let g = oms_gen::planted_partition(321, 4, 0.1, 0.02, 5);
        let visits: Vec<AtomicU32> = (0..321).map(|_| AtomicU32::new(0)).collect();
        BatchExecutor::default().run_parallel(&g, 4, |lo, hi| {
            for v in lo..hi {
                visits[v as usize].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(visits.iter().all(|v| v.load(Ordering::Relaxed) == 1));
    }
}
