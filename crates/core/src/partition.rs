//! Partition assignments and balance bookkeeping.

use oms_graph::{CsrGraph, NodeWeight};

/// Identifier of a block (equivalently, of a processing element for process
/// mapping).
pub type BlockId = u32;

/// Sentinel value for "not yet assigned".
pub const UNASSIGNED: BlockId = BlockId::MAX;

/// The result of a (hierarchical or flat) partitioning run: a permanent
/// block assignment for every node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    k: u32,
    assignments: Vec<BlockId>,
    block_weights: Vec<NodeWeight>,
}

impl Partition {
    /// Creates a partition from raw assignments, recomputing block weights
    /// from the given per-node weights.
    ///
    /// # Panics
    ///
    /// Panics if an assignment is `≥ k` (unassigned sentinels are not
    /// allowed either) or if the weight slice length differs from the
    /// assignment length.
    pub fn from_assignments(
        k: u32,
        assignments: Vec<BlockId>,
        node_weights: &[NodeWeight],
    ) -> Self {
        assert_eq!(
            assignments.len(),
            node_weights.len(),
            "assignments and node weights must have the same length"
        );
        let mut block_weights = vec![0; k as usize];
        for (v, &b) in assignments.iter().enumerate() {
            assert!(b < k, "node {v} assigned to block {b} but k = {k}");
            block_weights[b as usize] += node_weights[v];
        }
        Partition {
            k,
            assignments,
            block_weights,
        }
    }

    /// Creates a partition for a graph with unit node weights.
    pub fn from_assignments_unit(k: u32, assignments: Vec<BlockId>) -> Self {
        let weights = vec![1; assignments.len()];
        Partition::from_assignments(k, assignments, &weights)
    }

    /// Number of blocks `k`.
    pub fn num_blocks(&self) -> u32 {
        self.k
    }

    /// Number of nodes covered by this partition.
    pub fn num_nodes(&self) -> usize {
        self.assignments.len()
    }

    /// Block of node `v`.
    pub fn block_of(&self, v: oms_graph::NodeId) -> BlockId {
        self.assignments[v as usize]
    }

    /// The full assignment array.
    pub fn assignments(&self) -> &[BlockId] {
        &self.assignments
    }

    /// Weight `c(V_i)` of every block.
    pub fn block_weights(&self) -> &[NodeWeight] {
        &self.block_weights
    }

    /// Total node weight `c(V)` of the partitioned graph.
    pub fn total_weight(&self) -> NodeWeight {
        self.block_weights.iter().sum()
    }

    /// The heaviest block weight.
    pub fn max_block_weight(&self) -> NodeWeight {
        self.block_weights.iter().copied().max().unwrap_or(0)
    }

    /// The perfectly balanced block weight `⌈c(V)/k⌉`.
    pub fn average_block_weight(&self) -> f64 {
        self.total_weight() as f64 / self.k as f64
    }

    /// The balance constraint `L_max = ⌈(1 + ε)·c(V)/k⌉` for imbalance `ε`.
    pub fn capacity(total_weight: NodeWeight, k: u32, epsilon: f64) -> NodeWeight {
        (((1.0 + epsilon) * total_weight as f64) / k as f64).ceil() as NodeWeight
    }

    /// Measured imbalance: `max_i c(V_i) / (c(V)/k) − 1`.
    pub fn imbalance(&self) -> f64 {
        if self.total_weight() == 0 {
            return 0.0;
        }
        self.max_block_weight() as f64 / self.average_block_weight() - 1.0
    }

    /// `true` if every block respects the balance constraint for `epsilon`.
    pub fn is_balanced(&self, epsilon: f64) -> bool {
        let cap = Self::capacity(self.total_weight(), self.k, epsilon);
        self.block_weights.iter().all(|&w| w <= cap)
    }

    /// Number of non-empty blocks.
    pub fn used_blocks(&self) -> usize {
        self.block_weights.iter().filter(|&&w| w > 0).count()
    }

    /// Weight of the edges crossing blocks (the *edge-cut* objective).
    ///
    /// # Panics
    ///
    /// Panics if the graph has a different number of nodes than the
    /// partition.
    pub fn edge_cut(&self, graph: &CsrGraph) -> u64 {
        assert_eq!(graph.num_nodes(), self.num_nodes());
        let mut cut = 0u64;
        for (u, v, w) in graph.edges() {
            if self.assignments[u as usize] != self.assignments[v as usize] {
                cut += w;
            }
        }
        cut
    }

    /// Consistency check: every node assigned to a block `< k` and the cached
    /// block weights match the assignment.
    pub fn validate(&self, node_weights: &[NodeWeight]) -> bool {
        if node_weights.len() != self.assignments.len() {
            return false;
        }
        let mut weights = vec![0; self.k as usize];
        for (v, &b) in self.assignments.iter().enumerate() {
            if b >= self.k {
                return false;
            }
            weights[b as usize] += node_weights[v];
        }
        weights == self.block_weights
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_assignments_computes_block_weights() {
        let p = Partition::from_assignments(3, vec![0, 1, 1, 2, 2, 2], &[1, 1, 1, 1, 1, 1]);
        assert_eq!(p.block_weights(), &[1, 2, 3]);
        assert_eq!(p.num_blocks(), 3);
        assert_eq!(p.total_weight(), 6);
        assert_eq!(p.max_block_weight(), 3);
        assert_eq!(p.used_blocks(), 3);
    }

    #[test]
    fn imbalance_of_perfectly_balanced_partition_is_zero() {
        let p = Partition::from_assignments_unit(2, vec![0, 0, 1, 1]);
        assert!(p.imbalance().abs() < 1e-12);
        assert!(p.is_balanced(0.0));
    }

    #[test]
    fn imbalance_of_skewed_partition() {
        let p = Partition::from_assignments_unit(2, vec![0, 0, 0, 0, 0, 1]);
        let expected = 5.0 / 3.0 - 1.0;
        assert!((p.imbalance() - expected).abs() < 1e-12);
        assert!(!p.is_balanced(0.03));
        assert!(p.is_balanced(0.7));
    }

    #[test]
    fn capacity_formula_matches_paper() {
        // L_max = ceil((1 + eps) * c(V) / k)
        assert_eq!(Partition::capacity(100, 4, 0.03), 26);
        assert_eq!(Partition::capacity(64, 64, 0.0), 1);
        assert_eq!(Partition::capacity(10, 3, 0.0), 4);
    }

    #[test]
    fn edge_cut_counts_crossing_edges_only() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let p = Partition::from_assignments_unit(2, vec![0, 0, 1, 1]);
        assert_eq!(p.edge_cut(&g), 2);
        let all_same = Partition::from_assignments_unit(2, vec![0, 0, 0, 0]);
        assert_eq!(all_same.edge_cut(&g), 0);
    }

    #[test]
    fn edge_cut_respects_edge_weights() {
        let mut b = oms_graph::GraphBuilder::new(3);
        b.add_weighted_edge(0, 1, 10).unwrap();
        b.add_weighted_edge(1, 2, 1).unwrap();
        let g = b.build();
        let p = Partition::from_assignments_unit(2, vec![0, 1, 1]);
        assert_eq!(p.edge_cut(&g), 10);
    }

    #[test]
    fn validate_detects_tampered_weights() {
        let p = Partition::from_assignments_unit(2, vec![0, 1]);
        assert!(p.validate(&[1, 1]));
        assert!(!p.validate(&[1, 2]));
        assert!(!p.validate(&[1]));
    }

    #[test]
    #[should_panic]
    fn out_of_range_assignment_panics() {
        Partition::from_assignments_unit(2, vec![0, 5]);
    }

    #[test]
    fn weighted_nodes_affect_balance() {
        let p = Partition::from_assignments(2, vec![0, 1], &[9, 1]);
        assert_eq!(p.block_weights(), &[9, 1]);
        assert!((p.imbalance() - 0.8).abs() < 1e-12);
    }
}
