//! The unified, object-safe partitioning API.
//!
//! Every algorithm family in this workspace — the flat one-pass baselines
//! ([`Hashing`], [`Ldg`], [`Fennel`]), online recursive multi-section
//! ([`OnlineMultiSection`], both OMS and nh-OMS), the restreaming variants,
//! the shared-memory parallel drivers and the in-memory multilevel baseline
//! (registered by `oms-multilevel`) — is reachable through three pieces:
//!
//! * [`Partitioner`] — a dyn-compatible trait: `run` takes any
//!   `&mut dyn NodeStream` and returns a [`PartitionReport`]. It is
//!   blanket-implemented for every [`StreamingPartitioner`], so existing
//!   algorithms participate for free.
//! * [`JobSpec`] — a parseable, round-trippable description of a
//!   partitioning job (`"oms:4:16:8@eps=0.03,threads=8"`), with
//!   [`JobSpec::build`] as the factory producing a `Box<dyn Partitioner>`.
//! * The **dispatch registry** — a shared name → constructor table
//!   ([`register_algorithm`], [`registered_algorithms`]) that downstream
//!   crates extend (`oms_multilevel::register_algorithms()` adds the
//!   `multilevel` and `rms` baselines) and every frontend (CLI, bench
//!   harness, examples) resolves jobs against.
//!
//! ## Job specification grammar
//!
//! ```text
//! <algorithm>:<shape>[@<options>]
//!
//! shape    := k                   flat k-way partitioning, e.g. "fennel:64"
//!           | a1:a2:...:aℓ        hierarchical multi-section, e.g. "oms:4:16:8"
//! options  := key=value[,key=value]*
//!             eps=<f64>           allowed imbalance ε          (default 0.03)
//!             seed=<u64>          RNG seed                     (default 0)
//!             threads=<usize>     shared-memory parallelism    (default 1)
//!             shards=<usize>      shard workers of the deterministic
//!                                 sharded engine (S-way bulk-synchronous
//!                                 rounds with seeded message exchange;
//!                                 only for algorithms marked shardable;
//!                                 mutually exclusive with threads>1)
//!                                                              (default 1)
//!             passes=<usize>      restreaming passes (upper bound
//!                                 when conv= is set)           (default 1)
//!             conv=<f64>          relative edge-cut improvement below
//!                                 which a multi-pass run stops early
//!                                 (0 = fixed passes; the run always stops
//!                                 once no node moves)          (default 0)
//!             base=<u32>          nh-OMS multi-section base    (default 4)
//!             hybrid=<usize>      bottom tree layers solved with Hashing
//!                                 (the hybrid mapping of §3.2, default 0)
//!             buf=<nodes>         buffer size of the buffered streaming
//!                                 algorithms, in nodes (0 = algorithm
//!                                 default)
//!             lambda=<f64>        balance weight λ of the vertex-cut edge
//!                                 partitioners (the `e-*` algorithms of
//!                                 `oms-edgepart`; HDRF's balance knob)
//!                                 (default 1)
//!             drift=<f64>         drift threshold of dynamic maintenance:
//!                                 past it, the `oms-dynamic` layer falls
//!                                 back to a full restream (default 0.2)
//!             repair=<policy>     local-repair policy of dynamic
//!                                 maintenance: off | local | boundary
//!                                 (default boundary)
//!             window=<usize>      sliding-window cadence of dynamic
//!                                 maintenance: quality checkpoints are
//!                                 taken every `window` delta batches (the
//!                                 final batch always checkpoints)
//!                                 (default 1)
//!             dist=d1:d2:...      PE distances; enables the mapping
//!                                 objective J in the report
//! ```
//!
//! Algorithm names starting with `e-` (`e-hash`, `e-dbh`, `e-greedy`)
//! describe **edge partitioning** jobs under the vertex-cut objective; they
//! share this grammar (the shape is the flat block count `k`, `lambda=`
//! tunes the balance term) but are dispatched through the edge-partitioner
//! registry of the `oms-edgepart` crate rather than [`JobSpec::build`].
//!
//! `Display` renders the canonical form (options at non-default values only,
//! in the fixed order above), so `JobSpec` round-trips through strings.
//!
//! ## Example
//!
//! ```
//! use oms_core::api::JobSpec;
//! use oms_graph::{CsrGraph, InMemoryStream};
//!
//! let graph = CsrGraph::from_edges(8, &[
//!     (0, 1), (1, 2), (2, 3), (3, 0),
//!     (4, 5), (5, 6), (6, 7), (7, 4),
//!     (0, 4),
//! ]).unwrap();
//! let job: JobSpec = "oms:2:2@dist=1:10".parse().unwrap();
//! let partitioner = job.build().unwrap();
//! let report = partitioner.run(&mut InMemoryStream::new(&graph)).unwrap();
//! assert_eq!(report.partition.num_blocks(), 4);
//! assert!(report.mapping_cost.unwrap() >= report.edge_cut);
//! ```

use crate::config::{OmsConfig, OnePassConfig};
use crate::executor::{PassStats, PassTrajectory};
use crate::hierarchy::{DistanceSpec, HierarchySpec};
use crate::oms::OnlineMultiSection;
use crate::onepass::{Fennel, FlatObjective, Hashing, Ldg, StreamingPartitioner};
use crate::parallel::{hashing_parallel, onepass_parallel_restream};
use crate::partition::Partition;
use crate::restream::{ReFennel, ReHashing, ReLdg, ReOms};
use crate::shard::{ShardStats, ShardedFlat};
use crate::{BlockId, PartitionError, Result};
use oms_graph::{CsrGraph, EdgeWeight, NodeId, NodeStream, NodeWeight};
use oms_obs::Stopwatch;
use std::fmt;
use std::str::FromStr;
use std::sync::{Mutex, OnceLock};

// ----------------------------------------------------------------- the trait

/// The unified result of one partitioning run.
///
/// Fields mirror what the `oms-metrics` evaluation pipeline consumes: the
/// partition itself, the edge-cut `cut(Π)`, the imbalance
/// `max_i c(V_i)/(c(V)/k) − 1`, the process-mapping objective `J(C, D, Π)`
/// when a topology was attached to the job, and the wall time of the
/// partitioning pass (metric passes are excluded).
#[derive(Clone, Debug)]
pub struct PartitionReport {
    /// Registry name of the algorithm that produced the partition.
    pub algorithm: String,
    /// Edge-cut of the produced partition.
    pub edge_cut: u64,
    /// Imbalance of the produced partition.
    pub imbalance: f64,
    /// Mapping cost `J`, present when the job carries a topology (`dist=`).
    pub mapping_cost: Option<u64>,
    /// Wall time of the partitioning pass in seconds.
    pub seconds: f64,
    /// Per-pass quality trajectory of a multi-pass (restreaming) run, in
    /// pass order. Empty for algorithms that do not track passes.
    pub trajectory: Vec<PassStats>,
    /// Message statistics of runs driven by the sharded engine
    /// (`shards=S` jobs): per-shard message counts, rounds, and the
    /// seeded message-log hash. `None` for single-replica runs.
    pub shard_stats: Option<ShardStats>,
    /// The partition itself.
    pub partition: Partition,
}

impl PartitionReport {
    /// Number of blocks of the underlying partition.
    pub fn num_blocks(&self) -> u32 {
        self.partition.num_blocks()
    }

    /// Whether the partition satisfies the balance constraint for `epsilon`.
    pub fn is_balanced(&self, epsilon: f64) -> bool {
        self.partition.is_balanced(epsilon)
    }

    /// Total node weight `c(V)` of the partitioned graph. Equals `n` on
    /// unweighted graphs.
    pub fn total_node_weight(&self) -> NodeWeight {
        self.partition.total_weight()
    }

    /// Weight of the heaviest block `max_i c(V_i)` — the quantity the
    /// balance constraint `L_max` bounds. Equals the largest block *size*
    /// only on unweighted graphs.
    pub fn max_block_weight(&self) -> NodeWeight {
        self.partition.max_block_weight()
    }
}

/// An object-safe partitioner: any algorithm that can turn a node stream
/// into a [`Partition`].
///
/// The trait is deliberately dyn-compatible so heterogeneous frontends can
/// hold `Box<dyn Partitioner>` built from a [`JobSpec`] and drive any
/// algorithm — streaming, restreaming, parallel or in-memory — through one
/// entry point. It is blanket-implemented for every
/// [`StreamingPartitioner`]; algorithms that need random access to the graph
/// (parallel drivers, multilevel) implement it directly and use
/// [`NodeStream::as_graph`] / [`materialize_stream`] to obtain one.
pub trait Partitioner {
    /// Registry name of the algorithm (used in reports).
    fn name(&self) -> String;

    /// Number of blocks this partitioner produces.
    fn num_blocks(&self) -> u32;

    /// Computes the partition for the nodes delivered by `stream`.
    fn partition(&self, stream: &mut dyn NodeStream) -> Result<Partition>;

    /// Like [`Partitioner::partition`], but additionally returns the
    /// per-pass quality trajectory of multi-pass (restreaming) runs. The
    /// default wraps [`Partitioner::partition`] with an empty trajectory;
    /// restreaming algorithms override it.
    fn partition_tracked(
        &self,
        stream: &mut dyn NodeStream,
    ) -> Result<(Partition, PassTrajectory)> {
        Ok((self.partition(stream)?, PassTrajectory::default()))
    }

    /// The topology this job maps onto, when one was specified.
    fn topology(&self) -> Option<(&HierarchySpec, &DistanceSpec)> {
        None
    }

    /// Message statistics of the most recent run, for partitioners driven
    /// by the sharded engine ([`ShardedFlat`]).
    /// `None` for the classic single-replica engines.
    fn shard_stats(&self) -> Option<ShardStats> {
        None
    }

    /// Runs the partitioner and evaluates the result into a
    /// [`PartitionReport`] (edge-cut, imbalance, optional mapping cost `J`,
    /// wall time). The final edge-cut is taken from the engine's last
    /// metric pass when a trajectory was tracked; untracked runs pay one
    /// extra metric pass over the stream. `seconds` covers everything
    /// [`Partitioner::partition_tracked`] does — for multi-pass runs that
    /// includes the engine's per-pass metric passes (the per-pass
    /// [`PassStats::seconds`] exclude them).
    fn run(&self, stream: &mut dyn NodeStream) -> Result<PartitionReport> {
        let clock = Stopwatch::start();
        let (partition, trajectory) = self.partition_tracked(stream)?;
        let seconds = clock.seconds();
        let edge_cut = match trajectory.final_edge_cut() {
            // The trajectory's last accepted pass is the returned
            // partition; its cut was already measured stream-side.
            Some(cut) => cut,
            None => {
                stream.reset()?;
                stream_edge_cut(stream, partition.assignments())?
            }
        };
        let mapping_cost = match self.topology() {
            Some((hierarchy, distances)) => {
                stream.reset()?;
                Some(stream_mapping_cost(
                    stream,
                    partition.assignments(),
                    hierarchy,
                    distances,
                )?)
            }
            None => None,
        };
        Ok(PartitionReport {
            algorithm: self.name(),
            edge_cut,
            imbalance: partition.imbalance(),
            mapping_cost,
            seconds,
            trajectory: trajectory.stats,
            shard_stats: self.shard_stats(),
            partition,
        })
    }
}

impl<T: StreamingPartitioner> Partitioner for T {
    fn name(&self) -> String {
        StreamingPartitioner::name(self).to_string()
    }

    fn num_blocks(&self) -> u32 {
        StreamingPartitioner::num_blocks(self)
    }

    fn partition(&self, mut stream: &mut dyn NodeStream) -> Result<Partition> {
        self.partition_stream(&mut stream)
    }

    fn partition_tracked(
        &self,
        mut stream: &mut dyn NodeStream,
    ) -> Result<(Partition, PassTrajectory)> {
        self.partition_stream_tracked(&mut stream)
    }
}

// ------------------------------------------------------------ stream metrics

/// Weighted edge-cut of `assignments`, computed with one pass over the
/// stream. An edge incident to an unassigned node counts as cut.
///
/// This is a thin wrapper around [`crate::executor::measure_pass`] — the
/// *one* weighted edge-walk in the workspace — so the cut reported here can
/// never drift from the per-pass cut the restreaming engine measures.
pub fn stream_edge_cut(stream: &mut dyn NodeStream, assignments: &[BlockId]) -> Result<u64> {
    crate::executor::measure_pass(stream, assignments, 0).map(|(cut, _)| cut)
}

/// Mapping cost `J(C, D, Π) = Σ_{u,v} ω(u,v) · D(Π(u), Π(v))`, computed with
/// one pass over the stream.
pub fn stream_mapping_cost(
    stream: &mut dyn NodeStream,
    assignments: &[BlockId],
    hierarchy: &HierarchySpec,
    distances: &DistanceSpec,
) -> Result<u64> {
    let mut twice = 0u64;
    stream.for_each_node(&mut |node| {
        let own = assignments[node.node as usize];
        for (u, w) in node.neighbors_weighted() {
            twice += w * distances.distance(hierarchy, own, assignments[u as usize]);
        }
    })?;
    Ok(twice / 2)
}

/// Collects a full [`CsrGraph`] out of one stream pass.
///
/// Random-access algorithms behind the unified API (parallel drivers,
/// multilevel) call this when [`NodeStream::as_graph`] returns `None`,
/// trading the streaming memory guarantee for applicability.
pub fn materialize_stream(stream: &mut dyn NodeStream) -> Result<CsrGraph> {
    if let Some(graph) = stream.as_graph() {
        return Ok(graph.clone());
    }
    let n = stream.num_nodes();
    let mut node_weights: Vec<NodeWeight> = vec![1; n];
    let mut adjacency: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    let mut edge_weights: Vec<Vec<EdgeWeight>> = vec![Vec::new(); n];
    stream.for_each_node(&mut |node| {
        let i = node.node as usize;
        node_weights[i] = node.weight;
        adjacency[i] = node.neighbors.to_vec();
        edge_weights[i] = node.edge_weights.to_vec();
    })?;
    let mut xadj = Vec::with_capacity(n + 1);
    xadj.push(0usize);
    let mut adjncy = Vec::new();
    let mut eweights = Vec::new();
    for i in 0..n {
        adjncy.extend_from_slice(&adjacency[i]);
        eweights.extend_from_slice(&edge_weights[i]);
        xadj.push(adjncy.len());
    }
    CsrGraph::from_csr(xadj, adjncy, eweights, node_weights).map_err(PartitionError::Graph)
}

// -------------------------------------------------------- parallel adapters

#[derive(Clone, Copy, Debug)]
enum ParFlatKind {
    Hashing,
    Fennel,
    Ldg,
}

/// Adapter running the shared-memory parallel one-pass drivers (§3.4) behind
/// the object-safe API. Streams without an in-memory graph are materialised.
/// `passes > 1` restreams the graph with the same parallel kernel.
struct ParallelFlat {
    k: u32,
    kind: ParFlatKind,
    config: OnePassConfig,
    threads: usize,
    passes: usize,
    convergence: f64,
}

impl ParallelFlat {
    fn run_parallel(
        &self,
        stream: &mut dyn NodeStream,
        tracked: bool,
    ) -> Result<(Partition, PassTrajectory)> {
        let graph = materialize_stream(stream)?;
        match self.kind {
            ParFlatKind::Hashing => {
                // Hashing never moves a node across passes; a single
                // parallel pass is the fixed point.
                let partition = hashing_parallel(&graph, self.k, self.config, self.threads)?;
                Ok((partition, PassTrajectory::default()))
            }
            ParFlatKind::Fennel => onepass_parallel_restream(
                &graph,
                self.k,
                FlatObjective::Fennel,
                self.config,
                self.threads,
                self.passes,
                self.convergence,
                tracked,
            ),
            ParFlatKind::Ldg => onepass_parallel_restream(
                &graph,
                self.k,
                FlatObjective::Ldg,
                self.config,
                self.threads,
                self.passes,
                self.convergence,
                tracked,
            ),
        }
    }
}

impl Partitioner for ParallelFlat {
    fn name(&self) -> String {
        match self.kind {
            ParFlatKind::Hashing => "hashing",
            ParFlatKind::Fennel => "fennel",
            ParFlatKind::Ldg => "ldg",
        }
        .to_string()
    }

    fn num_blocks(&self) -> u32 {
        self.k
    }

    fn partition(&self, stream: &mut dyn NodeStream) -> Result<Partition> {
        Ok(self.run_parallel(stream, false)?.0)
    }

    fn partition_tracked(
        &self,
        stream: &mut dyn NodeStream,
    ) -> Result<(Partition, PassTrajectory)> {
        self.run_parallel(stream, true)
    }
}

/// Adapter running the vertex-centric parallel OMS driver behind the
/// object-safe API.
struct ParallelOms {
    oms: OnlineMultiSection,
    threads: usize,
    passes: usize,
    convergence: f64,
}

impl Partitioner for ParallelOms {
    fn name(&self) -> String {
        "oms".to_string()
    }

    fn num_blocks(&self) -> u32 {
        self.oms.tree().num_blocks()
    }

    fn partition(&self, stream: &mut dyn NodeStream) -> Result<Partition> {
        let graph = materialize_stream(stream)?;
        Ok(self
            .oms
            .partition_graph_parallel_restream(
                &graph,
                self.threads,
                self.passes,
                self.convergence,
                false,
            )?
            .0)
    }

    fn partition_tracked(
        &self,
        stream: &mut dyn NodeStream,
    ) -> Result<(Partition, PassTrajectory)> {
        let graph = materialize_stream(stream)?;
        self.oms.partition_graph_parallel_restream(
            &graph,
            self.threads,
            self.passes,
            self.convergence,
            true,
        )
    }
}

/// The partitioner produced by [`JobSpec::build`]: the algorithm picked from
/// the registry, labelled with its registry name and optionally carrying the
/// job's topology for mapping-cost evaluation.
struct JobPartitioner {
    name: String,
    topology: Option<(HierarchySpec, DistanceSpec)>,
    inner: Box<dyn Partitioner>,
}

impl Partitioner for JobPartitioner {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn num_blocks(&self) -> u32 {
        self.inner.num_blocks()
    }

    fn partition(&self, stream: &mut dyn NodeStream) -> Result<Partition> {
        self.inner.partition(stream)
    }

    fn partition_tracked(
        &self,
        stream: &mut dyn NodeStream,
    ) -> Result<(Partition, PassTrajectory)> {
        self.inner.partition_tracked(stream)
    }

    fn topology(&self) -> Option<(&HierarchySpec, &DistanceSpec)> {
        self.topology.as_ref().map(|(h, d)| (h, d))
    }

    fn shard_stats(&self) -> Option<ShardStats> {
        self.inner.shard_stats()
    }
}

// ----------------------------------------------------------------- job spec

/// Default allowed imbalance ε (the paper's 3 %).
pub const DEFAULT_EPSILON: f64 = 0.03;
/// Default nh-OMS multi-section base (the paper's tuned `b = 4`).
pub const DEFAULT_BASE_B: u32 = 4;
/// Default balance weight λ of the vertex-cut edge partitioners (HDRF's
/// recommended λ = 1: replica affinity and balance weighted equally).
pub const DEFAULT_LAMBDA: f64 = 1.0;
/// Default drift threshold of dynamic maintenance (`drift=`): a full
/// restream triggers once moved mass plus cut regression exceed 20 % since
/// the last full pass.
pub const DEFAULT_DRIFT: f64 = 0.2;

/// How dynamic maintenance (`oms-dynamic`) repairs a partition as deltas
/// arrive — the `repair=` job option.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RepairPolicy {
    /// Apply graph mutations and load bookkeeping only; no node is ever
    /// re-scored (newly inserted nodes are still placed once).
    Off,
    /// Re-score exactly the nodes a delta touches (the endpoints of a
    /// changed edge, the former neighbors of a deleted node).
    Local,
    /// Like `Local`, plus one cascade wave: when a touched node changes
    /// blocks, its boundary neighbors are re-scored as well.
    #[default]
    Boundary,
}

impl RepairPolicy {
    /// The canonical spelling used by the job grammar.
    pub fn name(&self) -> &'static str {
        match self {
            RepairPolicy::Off => "off",
            RepairPolicy::Local => "local",
            RepairPolicy::Boundary => "boundary",
        }
    }

    /// Parses a `repair=` value.
    pub fn parse(s: &str) -> Result<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" => Ok(RepairPolicy::Off),
            "local" => Ok(RepairPolicy::Local),
            "boundary" => Ok(RepairPolicy::Boundary),
            other => Err(PartitionError::InvalidSpec(format!(
                "unknown repair policy '{other}' (known: off, local, boundary)"
            ))),
        }
    }
}

impl fmt::Display for RepairPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The block structure a job asks for: flat `k`-way or hierarchical.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobShape {
    /// Plain `k`-way partitioning.
    Flat(u32),
    /// Multi-section along a communication hierarchy `a1:a2:…:aℓ`.
    Hierarchy(HierarchySpec),
}

impl JobShape {
    /// Total number of blocks / PEs.
    pub fn num_blocks(&self) -> u32 {
        match self {
            JobShape::Flat(k) => *k,
            JobShape::Hierarchy(h) => h.total_blocks(),
        }
    }

    /// The hierarchy, when the shape is hierarchical.
    pub fn hierarchy(&self) -> Option<&HierarchySpec> {
        match self {
            JobShape::Flat(_) => None,
            JobShape::Hierarchy(h) => Some(h),
        }
    }
}

impl fmt::Display for JobShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobShape::Flat(k) => write!(f, "{k}"),
            JobShape::Hierarchy(h) => write!(f, "{}", h.to_string_spec()),
        }
    }
}

/// A complete, serialisable description of one partitioning job.
///
/// See the [module documentation](self) for the string grammar.
/// `JobSpec` ↔ string conversion round-trips: `Display` prints the
/// canonical form and [`FromStr`] parses it back to an equal value.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// Registry name of the algorithm (`hashing`, `ldg`, `fennel`, `oms`,
    /// `nh-oms`, `multilevel`, …).
    pub algorithm: String,
    /// Flat `k` or hierarchy.
    pub shape: JobShape,
    /// Allowed imbalance ε.
    pub epsilon: f64,
    /// RNG seed.
    pub seed: u64,
    /// Shared-memory threads (`> 1` selects the parallel drivers).
    pub threads: usize,
    /// Shard workers (`> 1` selects the deterministic sharded engine for
    /// algorithms whose registry entry supports it). Mutually exclusive
    /// with `threads > 1`.
    pub shards: usize,
    /// Stream passes (`> 1` selects the restreaming variants; an upper
    /// bound when `convergence` is set).
    pub passes: usize,
    /// Relative edge-cut improvement below which a multi-pass run stops
    /// early (`0.0` = run the fixed number of passes; the engine still
    /// stops once no node moves between passes).
    pub convergence: f64,
    /// Multi-section base for nh-OMS.
    pub base_b: u32,
    /// Number of bottom tree layers solved with Hashing (the hybrid mapping
    /// of §3.2); only meaningful for `oms` / `nh-oms`.
    pub hashing_bottom_layers: usize,
    /// Buffer size (in nodes) of the buffered streaming algorithms; `0`
    /// selects the algorithm's default.
    pub buffer: usize,
    /// Balance weight λ of the vertex-cut edge partitioners (the `e-*`
    /// algorithms); larger values trade replication factor for edge-count
    /// balance. Ignored by node partitioners.
    pub lambda: f64,
    /// Drift threshold of dynamic maintenance: once cumulative moved mass
    /// plus cut regression since the last full pass exceed this fraction,
    /// the `oms-dynamic` layer falls back to a full restream. Ignored by
    /// one-shot runs.
    pub drift: f64,
    /// Local-repair policy of dynamic maintenance. Ignored by one-shot
    /// runs.
    pub repair: RepairPolicy,
    /// Sliding-window cadence of dynamic maintenance: quality checkpoints
    /// are taken every `window` delta batches (the final batch of a trace
    /// always checkpoints, whatever the cadence). Ignored by one-shot runs.
    pub window: usize,
    /// PE distances; when present, [`Partitioner::run`] also reports the
    /// mapping objective `J`. Requires a hierarchical shape.
    pub distances: Option<DistanceSpec>,
}

impl JobSpec {
    /// A flat `k`-way job with default options.
    pub fn flat(algorithm: impl Into<String>, k: u32) -> Self {
        JobSpec {
            algorithm: algorithm.into(),
            shape: JobShape::Flat(k),
            epsilon: DEFAULT_EPSILON,
            seed: 0,
            threads: 1,
            shards: 1,
            passes: 1,
            convergence: 0.0,
            base_b: DEFAULT_BASE_B,
            hashing_bottom_layers: 0,
            buffer: 0,
            lambda: DEFAULT_LAMBDA,
            drift: DEFAULT_DRIFT,
            repair: RepairPolicy::default(),
            window: 1,
            distances: None,
        }
    }

    /// A hierarchical job with default options.
    pub fn hierarchical(algorithm: impl Into<String>, hierarchy: HierarchySpec) -> Self {
        let mut spec = JobSpec::flat(algorithm, 0);
        spec.shape = JobShape::Hierarchy(hierarchy);
        spec
    }

    /// Parses the `<algorithm>:<shape>[@<options>]` form (same as
    /// [`FromStr`]).
    pub fn parse(s: &str) -> Result<Self> {
        s.parse()
    }

    /// Sets the allowed imbalance ε.
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of shared-memory threads.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the number of shard workers of the deterministic sharded
    /// engine.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Sets the number of restreaming passes.
    pub fn passes(mut self, passes: usize) -> Self {
        self.passes = passes;
        self
    }

    /// Sets the convergence threshold of multi-pass runs (relative
    /// edge-cut improvement below which the run stops early).
    pub fn convergence(mut self, min_improvement: f64) -> Self {
        self.convergence = min_improvement;
        self
    }

    /// Sets the nh-OMS multi-section base.
    pub fn base_b(mut self, base_b: u32) -> Self {
        self.base_b = base_b;
        self
    }

    /// Solves the given number of bottom tree layers with Hashing (the
    /// hybrid mapping of §3.2).
    pub fn hashing_bottom_layers(mut self, layers: usize) -> Self {
        self.hashing_bottom_layers = layers;
        self
    }

    /// Sets the buffer size (in nodes) of the buffered streaming algorithms.
    pub fn buffer(mut self, nodes: usize) -> Self {
        self.buffer = nodes;
        self
    }

    /// Sets the balance weight λ of the vertex-cut edge partitioners.
    pub fn lambda(mut self, lambda: f64) -> Self {
        self.lambda = lambda;
        self
    }

    /// Sets the drift threshold of dynamic maintenance.
    pub fn drift(mut self, drift: f64) -> Self {
        self.drift = drift;
        self
    }

    /// Sets the local-repair policy of dynamic maintenance.
    pub fn repair(mut self, repair: RepairPolicy) -> Self {
        self.repair = repair;
        self
    }

    /// Sets the sliding-window checkpoint cadence of dynamic maintenance.
    pub fn window(mut self, window: usize) -> Self {
        self.window = window;
        self
    }

    /// Attaches PE distances (enables the mapping objective `J`).
    pub fn distances(mut self, distances: DistanceSpec) -> Self {
        self.distances = Some(distances);
        self
    }

    /// Total number of blocks / PEs the job produces.
    pub fn num_blocks(&self) -> u32 {
        self.shape.num_blocks()
    }

    /// The flat one-pass configuration corresponding to this job.
    pub fn one_pass_config(&self) -> OnePassConfig {
        OnePassConfig::default()
            .epsilon(self.epsilon)
            .seed(self.seed)
    }

    /// The OMS configuration corresponding to this job.
    pub fn oms_config(&self) -> OmsConfig {
        OmsConfig::default()
            .epsilon(self.epsilon)
            .seed(self.seed)
            .base_b(self.base_b)
            .hashing_bottom_layers(self.hashing_bottom_layers)
    }

    /// Builds the partitioner this job describes, dispatching through the
    /// shared algorithm registry.
    ///
    /// The returned `Box<dyn Partitioner>` reports under the registry name
    /// and, when `dist=` was given, evaluates the mapping objective `J` in
    /// [`Partitioner::run`].
    pub fn build(&self) -> Result<Box<dyn Partitioner>> {
        let info = find_algorithm(&self.algorithm).ok_or_else(|| {
            let known: Vec<&str> = registered_algorithms().iter().map(|a| a.name).collect();
            PartitionError::InvalidSpec(format!(
                "unknown algorithm '{}' (registered: {})",
                self.algorithm,
                known.join(", ")
            ))
        })?;
        if self.num_blocks() == 0 {
            return Err(PartitionError::InvalidConfig(
                "the number of blocks k must be positive".into(),
            ));
        }
        if self.passes == 0 {
            return Err(PartitionError::InvalidConfig(
                "passes must be at least 1".into(),
            ));
        }
        if self.threads == 0 {
            return Err(PartitionError::InvalidConfig(
                "threads must be at least 1".into(),
            ));
        }
        if self.shards == 0 {
            return Err(PartitionError::InvalidConfig(
                "shards must be at least 1".into(),
            ));
        }
        if self.shards > 1 && !info.supports_sharding {
            return Err(PartitionError::InvalidConfig(format!(
                "algorithm '{}' does not support the sharded engine (shards=)",
                info.name
            )));
        }
        if self.shards > 1 && self.threads > 1 {
            return Err(PartitionError::InvalidConfig(
                "shards= and threads= are mutually exclusive: the sharded engine \
                 owns its workers"
                    .into(),
            ));
        }
        if !self.epsilon.is_finite() || self.epsilon < 0.0 {
            return Err(PartitionError::InvalidConfig(
                "epsilon must be non-negative".into(),
            ));
        }
        if !self.convergence.is_finite() || self.convergence < 0.0 {
            return Err(PartitionError::InvalidConfig(
                "conv must be non-negative".into(),
            ));
        }
        if !self.lambda.is_finite() || self.lambda < 0.0 {
            return Err(PartitionError::InvalidConfig(
                "lambda must be non-negative".into(),
            ));
        }
        if !self.drift.is_finite() || self.drift <= 0.0 {
            return Err(PartitionError::InvalidConfig(
                "drift must be positive".into(),
            ));
        }
        if self.window == 0 {
            return Err(PartitionError::InvalidConfig(
                "window must be at least 1".into(),
            ));
        }
        if self.convergence > 0.0 && self.passes <= 1 {
            return Err(PartitionError::InvalidConfig(
                "conv= only applies to multi-pass runs; set passes=<N> (the pass budget) as well"
                    .into(),
            ));
        }
        let inner = (info.build)(self)?;
        let topology = match (&self.shape, &self.distances) {
            (_, None) => None,
            (JobShape::Hierarchy(h), Some(d)) => {
                if d.num_levels() < h.num_levels() {
                    return Err(PartitionError::InvalidSpec(format!(
                        "dist= has {} levels but the hierarchy has {}",
                        d.num_levels(),
                        h.num_levels()
                    )));
                }
                Some((h.clone(), d.clone()))
            }
            (JobShape::Flat(_), Some(_)) => {
                return Err(PartitionError::InvalidSpec(
                    "dist= requires a hierarchical shape (a1:a2:...)".into(),
                ))
            }
        };
        Ok(Box::new(JobPartitioner {
            name: info.name.to_string(),
            topology,
            inner,
        }))
    }
}

impl fmt::Display for JobSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.algorithm, self.shape)?;
        let mut options: Vec<String> = Vec::new();
        if self.epsilon != DEFAULT_EPSILON {
            options.push(format!("eps={}", self.epsilon));
        }
        if self.seed != 0 {
            options.push(format!("seed={}", self.seed));
        }
        if self.threads != 1 {
            options.push(format!("threads={}", self.threads));
        }
        if self.shards != 1 {
            options.push(format!("shards={}", self.shards));
        }
        if self.passes != 1 {
            options.push(format!("passes={}", self.passes));
        }
        if self.convergence != 0.0 {
            options.push(format!("conv={}", self.convergence));
        }
        if self.base_b != DEFAULT_BASE_B {
            options.push(format!("base={}", self.base_b));
        }
        if self.hashing_bottom_layers != 0 {
            options.push(format!("hybrid={}", self.hashing_bottom_layers));
        }
        if self.buffer != 0 {
            options.push(format!("buf={}", self.buffer));
        }
        if self.lambda != DEFAULT_LAMBDA {
            options.push(format!("lambda={}", self.lambda));
        }
        if self.drift != DEFAULT_DRIFT {
            options.push(format!("drift={}", self.drift));
        }
        if self.repair != RepairPolicy::default() {
            options.push(format!("repair={}", self.repair));
        }
        if self.window != 1 {
            options.push(format!("window={}", self.window));
        }
        if let Some(d) = &self.distances {
            let joined: Vec<String> = d.distances().iter().map(u64::to_string).collect();
            options.push(format!("dist={}", joined.join(":")));
        }
        if !options.is_empty() {
            write!(f, "@{}", options.join(","))?;
        }
        Ok(())
    }
}

impl FromStr for JobSpec {
    type Err = PartitionError;

    fn from_str(s: &str) -> Result<Self> {
        let (head, options) = match s.split_once('@') {
            Some((head, options)) => (head, Some(options)),
            None => (s, None),
        };
        let mut parts = head.split(':');
        let algorithm = parts.next().unwrap_or("").trim();
        if algorithm.is_empty() {
            return Err(PartitionError::InvalidSpec(format!(
                "job spec '{s}' is missing an algorithm name"
            )));
        }
        let factors: std::result::Result<Vec<u32>, _> =
            parts.map(|p| p.trim().parse::<u32>()).collect();
        let factors = factors.map_err(|_| {
            PartitionError::InvalidSpec(format!(
                "job spec '{s}': the shape after '{algorithm}:' must be a k or a1:a2:... list"
            ))
        })?;
        let shape = match factors.len() {
            0 => {
                return Err(PartitionError::InvalidSpec(format!(
                    "job spec '{s}' is missing a shape: use '{algorithm}:<k>' or '{algorithm}:<a1:a2:...>'"
                )))
            }
            1 => JobShape::Flat(factors[0]),
            _ => JobShape::Hierarchy(HierarchySpec::new(factors)?),
        };

        let mut spec = JobSpec::flat(algorithm, 0);
        spec.shape = shape;
        if let Some(options) = options {
            for pair in options.split(',') {
                let pair = pair.trim();
                if pair.is_empty() {
                    continue;
                }
                let Some((key, value)) = pair.split_once('=') else {
                    return Err(PartitionError::InvalidSpec(format!(
                        "job option '{pair}' is not of the form key=value"
                    )));
                };
                let (key, value) = (key.trim(), value.trim());
                let parse_err = |what: &str| {
                    PartitionError::InvalidSpec(format!("job option '{key}={value}': {what}"))
                };
                match key {
                    "eps" | "epsilon" => {
                        spec.epsilon = value
                            .parse()
                            .map_err(|_| parse_err("expected a floating-point value"))?;
                        if !spec.epsilon.is_finite() || spec.epsilon < 0.0 {
                            return Err(parse_err("epsilon must be non-negative"));
                        }
                    }
                    "seed" => {
                        spec.seed = value.parse().map_err(|_| parse_err("expected an integer"))?;
                    }
                    "threads" => {
                        spec.threads =
                            value.parse().map_err(|_| parse_err("expected an integer"))?;
                        if spec.threads == 0 {
                            return Err(parse_err("threads must be at least 1"));
                        }
                    }
                    "shards" => {
                        spec.shards = value.parse().map_err(|_| parse_err("expected an integer"))?;
                        if spec.shards == 0 {
                            return Err(parse_err("shards must be at least 1"));
                        }
                    }
                    "passes" => {
                        spec.passes = value.parse().map_err(|_| parse_err("expected an integer"))?;
                        if spec.passes == 0 {
                            return Err(parse_err("passes must be at least 1"));
                        }
                    }
                    "conv" | "convergence" => {
                        spec.convergence = value
                            .parse()
                            .map_err(|_| parse_err("expected a floating-point value"))?;
                        if !spec.convergence.is_finite() || spec.convergence < 0.0 {
                            return Err(parse_err("conv must be non-negative"));
                        }
                    }
                    "base" => {
                        spec.base_b = value.parse().map_err(|_| parse_err("expected an integer"))?;
                    }
                    "hybrid" => {
                        spec.hashing_bottom_layers =
                            value.parse().map_err(|_| parse_err("expected an integer"))?;
                    }
                    "buf" | "buffer" => {
                        spec.buffer = value.parse().map_err(|_| parse_err("expected an integer"))?;
                    }
                    "lambda" => {
                        spec.lambda = value
                            .parse()
                            .map_err(|_| parse_err("expected a floating-point value"))?;
                        if !spec.lambda.is_finite() || spec.lambda < 0.0 {
                            return Err(parse_err("lambda must be non-negative"));
                        }
                    }
                    "drift" => {
                        spec.drift = value
                            .parse()
                            .map_err(|_| parse_err("expected a floating-point value"))?;
                        if !spec.drift.is_finite() || spec.drift <= 0.0 {
                            return Err(parse_err("drift must be positive"));
                        }
                    }
                    "repair" => {
                        spec.repair = RepairPolicy::parse(value)?;
                    }
                    "window" => {
                        spec.window = value.parse().map_err(|_| parse_err("expected an integer"))?;
                        if spec.window == 0 {
                            return Err(parse_err("window must be at least 1"));
                        }
                    }
                    "dist" | "distances" => {
                        spec.distances = Some(DistanceSpec::parse(value)?);
                    }
                    _ => {
                        return Err(PartitionError::InvalidSpec(format!(
                            "unknown job option '{key}' (known: eps, seed, threads, shards, passes, conv, base, hybrid, buf, lambda, drift, repair, window, dist)"
                        )))
                    }
                }
            }
        }
        Ok(spec)
    }
}

// ----------------------------------------------------------------- registry

/// One entry of the shared algorithm registry.
#[derive(Clone, Copy)]
pub struct AlgorithmInfo {
    /// Canonical registry name (what [`JobSpec::algorithm`] refers to).
    pub name: &'static str,
    /// Accepted alternative spellings.
    pub aliases: &'static [&'static str],
    /// One-line description for `--help`-style listings.
    pub description: &'static str,
    /// Whether the algorithm exploits a hierarchical shape (rather than just
    /// flattening it to `k`).
    pub supports_hierarchy: bool,
    /// Whether the `oms-dynamic` layer can maintain this algorithm's
    /// partitions incrementally (ReFennel-style local re-scoring of touched
    /// nodes). Only the flat one-pass scorers qualify; hierarchical,
    /// parallel-only and in-memory algorithms need a full re-run.
    pub supports_repair: bool,
    /// Whether the deterministic sharded engine (`shards=S`) can drive this
    /// algorithm. Only the flat one-pass scorers with a load-vector state
    /// qualify; hashing is stateless and the hierarchical / in-memory
    /// algorithms have no replicated sink state to reconcile.
    pub supports_sharding: bool,
    /// Constructor turning a [`JobSpec`] into the boxed algorithm.
    pub build: fn(&JobSpec) -> Result<Box<dyn Partitioner>>,
}

impl fmt::Debug for AlgorithmInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AlgorithmInfo")
            .field("name", &self.name)
            .field("aliases", &self.aliases)
            .field("description", &self.description)
            .field("supports_hierarchy", &self.supports_hierarchy)
            .field("supports_repair", &self.supports_repair)
            .field("supports_sharding", &self.supports_sharding)
            .finish()
    }
}

static REGISTRY: OnceLock<Mutex<Vec<AlgorithmInfo>>> = OnceLock::new();

fn registry() -> &'static Mutex<Vec<AlgorithmInfo>> {
    REGISTRY.get_or_init(|| Mutex::new(builtin_algorithms()))
}

/// Registers (or replaces, by name) an algorithm in the shared registry.
///
/// Downstream crates use this to plug additional backends into
/// [`JobSpec::build`]; `oms_multilevel::register_algorithms()` adds the
/// in-memory `multilevel` and `rms` baselines this way.
pub fn register_algorithm(info: AlgorithmInfo) {
    let mut algorithms = registry().lock().expect("algorithm registry poisoned");
    match algorithms.iter_mut().find(|a| a.name == info.name) {
        Some(slot) => *slot = info,
        None => algorithms.push(info),
    }
}

/// A snapshot of every registered algorithm, in registration order.
pub fn registered_algorithms() -> Vec<AlgorithmInfo> {
    registry()
        .lock()
        .expect("algorithm registry poisoned")
        .clone()
}

/// Looks an algorithm up by canonical name or alias (case-insensitive).
pub fn find_algorithm(name: &str) -> Option<AlgorithmInfo> {
    let wanted = name.to_ascii_lowercase();
    registered_algorithms()
        .into_iter()
        .find(|a| a.name == wanted || a.aliases.iter().any(|&alias| alias == wanted))
}

fn build_hashing(spec: &JobSpec) -> Result<Box<dyn Partitioner>> {
    let k = spec.num_blocks();
    let config = spec.one_pass_config();
    // Hashing is a fixed point after one pass no matter how it is driven,
    // so restreaming (sequential, with the immediate fixed-point exit)
    // takes precedence over the parallel driver.
    Ok(if spec.passes > 1 {
        Box::new(ReHashing::new(k, config, spec.passes).convergence(spec.convergence))
    } else if spec.threads > 1 {
        Box::new(ParallelFlat {
            k,
            kind: ParFlatKind::Hashing,
            config,
            threads: spec.threads,
            passes: 1,
            convergence: 0.0,
        })
    } else {
        Box::new(Hashing::new(k, config))
    })
}

fn build_ldg(spec: &JobSpec) -> Result<Box<dyn Partitioner>> {
    let k = spec.num_blocks();
    let config = spec.one_pass_config();
    Ok(if spec.shards > 1 {
        Box::new(
            ShardedFlat::new(k, config, FlatObjective::Ldg, spec.shards)
                .passes(spec.passes)
                .convergence(spec.convergence),
        )
    } else if spec.threads > 1 {
        Box::new(ParallelFlat {
            k,
            kind: ParFlatKind::Ldg,
            config,
            threads: spec.threads,
            passes: spec.passes,
            convergence: spec.convergence,
        })
    } else if spec.passes > 1 {
        Box::new(ReLdg::new(k, config, spec.passes).convergence(spec.convergence))
    } else {
        Box::new(Ldg::new(k, config))
    })
}

fn build_fennel(spec: &JobSpec) -> Result<Box<dyn Partitioner>> {
    let k = spec.num_blocks();
    let config = spec.one_pass_config();
    Ok(if spec.shards > 1 {
        Box::new(
            ShardedFlat::new(k, config, FlatObjective::Fennel, spec.shards)
                .passes(spec.passes)
                .convergence(spec.convergence),
        )
    } else if spec.threads > 1 {
        Box::new(ParallelFlat {
            k,
            kind: ParFlatKind::Fennel,
            config,
            threads: spec.threads,
            passes: spec.passes,
            convergence: spec.convergence,
        })
    } else if spec.passes > 1 {
        Box::new(ReFennel::new(k, config, spec.passes).convergence(spec.convergence))
    } else {
        Box::new(Fennel::new(k, config))
    })
}

fn finish_oms(
    spec: &JobSpec,
    _algorithm: &str,
    oms: OnlineMultiSection,
) -> Result<Box<dyn Partitioner>> {
    Ok(if spec.threads > 1 {
        Box::new(ParallelOms {
            oms,
            threads: spec.threads,
            passes: spec.passes,
            convergence: spec.convergence,
        })
    } else if spec.passes > 1 {
        Box::new(ReOms::new(oms, spec.passes).convergence(spec.convergence))
    } else {
        Box::new(oms)
    })
}

fn build_oms(spec: &JobSpec) -> Result<Box<dyn Partitioner>> {
    let config = spec.oms_config();
    let oms = match &spec.shape {
        JobShape::Hierarchy(h) => OnlineMultiSection::with_hierarchy(h.clone(), config),
        JobShape::Flat(k) => OnlineMultiSection::flat(*k, config)?,
    };
    finish_oms(spec, "oms", oms)
}

fn build_nh_oms(spec: &JobSpec) -> Result<Box<dyn Partitioner>> {
    // nh-OMS always uses the artificial base-b tree, even when the shape was
    // written as a hierarchy (only the product k matters).
    let oms = OnlineMultiSection::flat(spec.num_blocks(), spec.oms_config())?;
    finish_oms(spec, "nh-oms", oms)
}

fn builtin_algorithms() -> Vec<AlgorithmInfo> {
    vec![
        AlgorithmInfo {
            name: "hashing",
            aliases: &["hash"],
            description: "random hash assignment (fastest, worst quality)",
            supports_hierarchy: false,
            supports_repair: false,
            supports_sharding: false,
            build: build_hashing,
        },
        AlgorithmInfo {
            name: "ldg",
            aliases: &["reldg"],
            description: "linear deterministic greedy; passes>1 = ReLDG, threads>1 = parallel",
            supports_hierarchy: false,
            supports_repair: true,
            supports_sharding: true,
            build: build_ldg,
        },
        AlgorithmInfo {
            name: "fennel",
            aliases: &["refennel"],
            description: "Fennel one-pass; passes>1 = ReFennel, threads>1 = parallel",
            supports_hierarchy: false,
            supports_repair: true,
            supports_sharding: true,
            build: build_fennel,
        },
        AlgorithmInfo {
            name: "oms",
            aliases: &["reoms"],
            description: "online recursive multi-section (hierarchy shape = OMS, flat k = nh-OMS)",
            supports_hierarchy: true,
            supports_repair: false,
            supports_sharding: false,
            build: build_oms,
        },
        AlgorithmInfo {
            name: "nh-oms",
            aliases: &["nhoms"],
            description: "nh-OMS: k-way partitioning through the artificial base-b tree",
            supports_hierarchy: false,
            supports_repair: false,
            supports_sharding: false,
            build: build_nh_oms,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use oms_graph::InMemoryStream;

    fn two_communities() -> CsrGraph {
        CsrGraph::from_edges(
            8,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 0),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 4),
                (0, 4),
            ],
        )
        .unwrap()
    }

    #[test]
    fn parse_flat_spec() {
        let spec = JobSpec::parse("fennel:64").unwrap();
        assert_eq!(spec.algorithm, "fennel");
        assert_eq!(spec.shape, JobShape::Flat(64));
        assert_eq!(spec.epsilon, DEFAULT_EPSILON);
        assert_eq!(spec.num_blocks(), 64);
    }

    #[test]
    fn parse_hierarchy_spec_with_options() {
        let spec = JobSpec::parse("oms:4:16:8@eps=0.05,threads=8,seed=3").unwrap();
        assert_eq!(spec.algorithm, "oms");
        assert_eq!(
            spec.shape,
            JobShape::Hierarchy(HierarchySpec::parse("4:16:8").unwrap())
        );
        assert_eq!(spec.epsilon, 0.05);
        assert_eq!(spec.threads, 8);
        assert_eq!(spec.seed, 3);
        assert_eq!(spec.num_blocks(), 512);
    }

    #[test]
    fn display_is_canonical_and_round_trips() {
        for text in [
            "fennel:64",
            "oms:4:16:8",
            "oms:4:16:8@eps=0.05,threads=8",
            "ldg:16@passes=3",
            "fennel:64@shards=4",
            "ldg:16@seed=5,shards=2,passes=3",
            "nh-oms:10@seed=7,base=2",
            "ldg:16@passes=4,conv=0.02",
            "oms:2:2:2@dist=1:10:100",
            "oms:4:4:4@hybrid=2",
            "buffered:4@buf=4096",
            "buffered:8@eps=0.05,seed=3,buf=2048",
            "e-greedy:32@lambda=1.5",
            "e-hash:8@seed=7",
            "e-dbh:16@passes=3",
            "e-greedy:8@seed=3,passes=3,lambda=0.5",
            "fennel:8@drift=0.5",
            "fennel:8@repair=local",
            "ldg:16@seed=3,drift=0.05,repair=off",
            "fennel:8@eps=0.05,passes=2,drift=0.4,repair=local",
            "fennel:8@window=4",
            "ldg:16@drift=0.05,repair=local,window=3",
        ] {
            let spec = JobSpec::parse(text).unwrap();
            assert_eq!(spec.to_string(), text, "canonical form");
            assert_eq!(
                JobSpec::parse(&spec.to_string()).unwrap(),
                spec,
                "round trip"
            );
        }
    }

    #[test]
    fn invalid_specs_are_rejected() {
        for bad in [
            "",
            "fennel",
            "fennel:abc",
            "fennel:16@wat=1",
            "fennel:16@threads",
            "fennel:16@threads=0",
            "fennel:16@passes=0",
            "fennel:16@shards=0",
            "fennel:16@shards=abc",
            "fennel:16@eps=-1",
            "oms:4:1:8",
            "e-greedy:8@lambda=-1",
            "e-greedy:8@lambda=abc",
            "fennel:8@drift=0",
            "fennel:8@drift=-0.5",
            "fennel:8@drift=abc",
            "fennel:8@repair=sometimes",
            "fennel:8@window=0",
            "fennel:8@window=abc",
        ] {
            assert!(JobSpec::parse(bad).is_err(), "'{bad}' should not parse");
        }
    }

    #[test]
    fn unknown_algorithm_is_rejected_at_build_time() {
        let Err(err) = JobSpec::parse("frobnicate:8").unwrap().build() else {
            panic!("unknown algorithm should not build");
        };
        let msg = err.to_string();
        assert!(msg.contains("unknown algorithm"), "{msg}");
        assert!(
            msg.contains("fennel"),
            "should list known algorithms: {msg}"
        );
    }

    #[test]
    fn zero_blocks_rejected_at_build_time() {
        assert!(JobSpec::parse("fennel:0").unwrap().build().is_err());
    }

    #[test]
    fn sharding_is_gated_at_build_time() {
        // Only algorithms whose registry entry supports the sharded engine
        // accept shards>1, and shards and threads are mutually exclusive.
        for bad in [
            "hashing:4@shards=2",
            "oms:4@shards=2",
            "nh-oms:4@shards=2",
            "fennel:4@shards=2,threads=2",
        ] {
            assert!(
                JobSpec::parse(bad).unwrap().build().is_err(),
                "'{bad}' should not build"
            );
        }
        assert!(JobSpec::parse("fennel:4@shards=2").unwrap().build().is_ok());
        assert!(JobSpec::parse("ldg:4@shards=2").unwrap().build().is_ok());
    }

    #[test]
    fn sharded_jobs_report_shard_stats() {
        let graph = two_communities();
        let report = JobSpec::parse("fennel:4@shards=2")
            .unwrap()
            .build()
            .unwrap()
            .run(&mut InMemoryStream::new(&graph))
            .unwrap();
        let stats = report.shard_stats.expect("sharded run reports stats");
        assert_eq!(stats.shards, 2);
        assert_eq!(stats.messages_sent.len(), 2);
        // Classic runs report none.
        let report = JobSpec::parse("fennel:4")
            .unwrap()
            .build()
            .unwrap()
            .run(&mut InMemoryStream::new(&graph))
            .unwrap();
        assert!(report.shard_stats.is_none());
    }

    #[test]
    fn dist_requires_hierarchy() {
        assert!(JobSpec::parse("fennel:8@dist=1:10")
            .unwrap()
            .build()
            .is_err());
        assert!(JobSpec::parse("oms:2:2@dist=1").unwrap().build().is_err());
        assert!(JobSpec::parse("oms:2:2@dist=1:10").unwrap().build().is_ok());
    }

    #[test]
    fn built_partitioners_run_and_report() {
        let graph = two_communities();
        for text in [
            "hashing:4",
            "ldg:4",
            "fennel:4",
            "oms:4",
            "oms:2:2",
            "nh-oms:4",
            "fennel:4@passes=3",
            "ldg:4@passes=2",
            "oms:4@passes=2",
            "fennel:4@threads=2",
            "ldg:4@threads=2",
            "fennel:4@shards=2",
            "ldg:4@shards=2",
            "fennel:4@shards=2,passes=2",
            "hashing:4@threads=2",
            "oms:2:2@threads=2",
        ] {
            let job = JobSpec::parse(text).unwrap();
            let partitioner = job.build().unwrap_or_else(|e| panic!("{text}: {e}"));
            assert_eq!(partitioner.num_blocks(), 4, "{text}");
            let report = partitioner
                .run(&mut InMemoryStream::new(&graph))
                .unwrap_or_else(|e| panic!("{text}: {e}"));
            assert_eq!(report.partition.num_nodes(), 8, "{text}");
            assert!(report.partition.validate(&[1; 8]), "{text}");
            assert!(report.mapping_cost.is_none(), "{text}");
        }
    }

    #[test]
    fn report_includes_mapping_cost_with_distances() {
        let graph = two_communities();
        let job = JobSpec::parse("oms:2:2@dist=1:10").unwrap();
        let report = job
            .build()
            .unwrap()
            .run(&mut InMemoryStream::new(&graph))
            .unwrap();
        let j = report.mapping_cost.expect("topology given");
        assert!(j >= report.edge_cut, "J = {j} < cut = {}", report.edge_cut);
        assert_eq!(report.algorithm, "oms");
    }

    #[test]
    fn stream_edge_cut_matches_partition_edge_cut() {
        let graph = two_communities();
        let partition = JobSpec::parse("fennel:2")
            .unwrap()
            .build()
            .unwrap()
            .partition(&mut InMemoryStream::new(&graph))
            .unwrap();
        let via_stream =
            stream_edge_cut(&mut InMemoryStream::new(&graph), partition.assignments()).unwrap();
        assert_eq!(via_stream, partition.edge_cut(&graph));
    }

    #[test]
    fn materialize_stream_round_trips_the_graph() {
        let graph = two_communities();
        let rebuilt = materialize_stream(&mut InMemoryStream::new(&graph)).unwrap();
        assert_eq!(graph, rebuilt);
    }

    #[test]
    fn aliases_resolve() {
        assert_eq!(find_algorithm("refennel").unwrap().name, "fennel");
        assert_eq!(find_algorithm("OMS").unwrap().name, "oms");
        assert!(find_algorithm("does-not-exist").is_none());
    }

    #[test]
    fn registry_can_be_extended_and_replaced() {
        fn build_dummy(spec: &JobSpec) -> Result<Box<dyn Partitioner>> {
            Ok(Box::new(Hashing::new(
                spec.num_blocks(),
                OnePassConfig::default(),
            )))
        }
        register_algorithm(AlgorithmInfo {
            name: "dummy-test-algo",
            aliases: &[],
            description: "test-only",
            supports_hierarchy: false,
            supports_repair: false,
            supports_sharding: false,
            build: build_dummy,
        });
        assert!(find_algorithm("dummy-test-algo").is_some());
        let p = JobSpec::parse("dummy-test-algo:4")
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(p.name(), "dummy-test-algo");
        // Re-registering replaces rather than duplicates.
        register_algorithm(AlgorithmInfo {
            name: "dummy-test-algo",
            aliases: &[],
            description: "replaced",
            supports_hierarchy: false,
            supports_repair: false,
            supports_sharding: false,
            build: build_dummy,
        });
        let count = registered_algorithms()
            .iter()
            .filter(|a| a.name == "dummy-test-algo")
            .count();
        assert_eq!(count, 1);
    }

    #[test]
    fn every_builtin_supports_passes() {
        let graph = two_communities();
        for text in [
            "hashing:4@passes=3",
            "ldg:4@passes=3",
            "fennel:4@passes=2,threads=2",
            "oms:4@passes=2,threads=2",
            "nh-oms:4@passes=2",
        ] {
            let report = JobSpec::parse(text)
                .unwrap()
                .build()
                .unwrap_or_else(|e| panic!("{text}: {e}"))
                .run(&mut InMemoryStream::new(&graph))
                .unwrap_or_else(|e| panic!("{text}: {e}"));
            assert_eq!(report.partition.num_nodes(), 8, "{text}");
            assert!(report.partition.validate(&[1; 8]), "{text}");
        }
    }

    #[test]
    fn multi_pass_reports_carry_a_trajectory() {
        let graph = two_communities();
        let report = JobSpec::parse("fennel:2@passes=4,seed=1")
            .unwrap()
            .build()
            .unwrap()
            .run(&mut InMemoryStream::new(&graph))
            .unwrap();
        assert!(!report.trajectory.is_empty());
        assert!(
            report
                .trajectory
                .windows(2)
                .all(|w| w[1].edge_cut <= w[0].edge_cut),
            "trajectory must be non-increasing: {:?}",
            report.trajectory
        );
        assert_eq!(
            report.trajectory.last().unwrap().edge_cut,
            report.edge_cut,
            "the reported cut is the final accepted pass"
        );
        // Single-pass runs keep an empty trajectory.
        let single = JobSpec::parse("fennel:2@seed=1")
            .unwrap()
            .build()
            .unwrap()
            .run(&mut InMemoryStream::new(&graph))
            .unwrap();
        assert!(single.trajectory.is_empty());
    }

    #[test]
    fn convergence_spec_round_trips_and_validates() {
        let spec = JobSpec::parse("fennel:8@passes=5,conv=0.01").unwrap();
        assert_eq!(spec.passes, 5);
        assert_eq!(spec.convergence, 0.01);
        assert_eq!(spec.to_string(), "fennel:8@passes=5,conv=0.01");
        assert!(JobSpec::parse("fennel:8@conv=-0.5").is_err());
        assert!(JobSpec::parse("fennel:8@conv=abc").is_err());
        // conv without a multi-pass budget parses but does not build: a
        // single pass can never converge, so the flag would silently do
        // nothing.
        assert!(JobSpec::parse("fennel:8@conv=0.01")
            .unwrap()
            .build()
            .is_err());
    }
}
