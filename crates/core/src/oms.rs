//! Online recursive multi-section (Algorithm 1 of the paper).
//!
//! Every streamed node is routed down the multi-section tree: it is first
//! assigned to one of the root's children (the topmost hierarchy layer),
//! then, within the chosen block, to one of its children, and so on until a
//! leaf — i.e. an actual block / PE — is reached. Because each layer's
//! decision only depends on nodes streamed earlier, the result is *identical*
//! to running `ℓ` successive passes of the per-layer partitioner, but needs
//! only a single pass.
//!
//! Per layer the candidate children are scored with Fennel (using the
//! adapted `αᵢ` of §3.2 by default), LDG or Hashing; the hybrid mode solves
//! the bottom layers with Hashing for an additional speedup at some quality
//! cost (Theorem 3).

use crate::config::{OmsConfig, ScorerKind};
use crate::executor::{BatchExecutor, NodeSink};
use crate::hierarchy::HierarchySpec;
use crate::mstree::MultisectionTree;
use crate::onepass::StreamingPartitioner;
use crate::partition::{Partition, UNASSIGNED};
use crate::scorer::{select_fennel, select_hashing, select_ldg, Candidate};
use crate::{BlockId, PartitionError, Result};
use oms_graph::{CsrGraph, EdgeWeight, InMemoryStream, NodeStream, NodeWeight};

/// The online recursive multi-section partitioner (OMS / nh-OMS).
#[derive(Clone, Debug)]
pub struct OnlineMultiSection {
    tree: MultisectionTree,
    config: OmsConfig,
}

impl OnlineMultiSection {
    /// OMS: multi-section along an explicit communication hierarchy.
    pub fn with_hierarchy(hierarchy: HierarchySpec, config: OmsConfig) -> Self {
        OnlineMultiSection {
            tree: MultisectionTree::from_hierarchy(&hierarchy),
            config,
        }
    }

    /// nh-OMS: plain `k`-way partitioning through an artificial recursive
    /// `b`-section hierarchy (`b` comes from [`OmsConfig::base_b`]).
    pub fn flat(k: u32, config: OmsConfig) -> Result<Self> {
        if k == 0 {
            return Err(PartitionError::InvalidConfig(
                "the number of blocks k must be positive".into(),
            ));
        }
        if config.base_b < 2 {
            return Err(PartitionError::InvalidConfig(
                "the multi-section base must be at least 2".into(),
            ));
        }
        Ok(OnlineMultiSection {
            tree: MultisectionTree::flat(k, config.base_b),
            config,
        })
    }

    /// Builds an OMS instance from an explicit, pre-built multi-section tree.
    pub fn with_tree(tree: MultisectionTree, config: OmsConfig) -> Self {
        OnlineMultiSection { tree, config }
    }

    /// The underlying multi-section tree.
    pub fn tree(&self) -> &MultisectionTree {
        &self.tree
    }

    /// The configuration in use.
    pub fn config(&self) -> &OmsConfig {
        &self.config
    }

    /// Whether a decision among children at tree depth `child_depth` is
    /// solved with Hashing under the hybrid configuration.
    pub(crate) fn hybrid_uses_hashing(&self, child_depth: usize) -> bool {
        if self.config.scorer == ScorerKind::Hashing {
            return true;
        }
        if self.config.hashing_bottom_layers == 0 {
            return false;
        }
        // Layers are counted from the bottom: the deepest decision is layer 1.
        let layers_from_bottom = self.tree.max_depth() + 1 - child_depth;
        layers_from_bottom <= self.config.hashing_bottom_layers
    }
}

/// The per-run mutable state of an OMS pass. Separate from
/// [`OnlineMultiSection`] so that the restreaming driver can keep it alive
/// across passes.
pub(crate) struct OmsState {
    pub(crate) assignments: Vec<BlockId>,
    pub(crate) node_weights: Vec<NodeWeight>,
    /// Weight of every tree node (block or sub-block). Lemma 1: `O(k)` many.
    pub(crate) tree_weights: Vec<NodeWeight>,
    capacities: Vec<NodeWeight>,
    alphas: Vec<f64>,
    /// Scratch connectivity buffer, sized to the maximum fan-out.
    conn: Vec<EdgeWeight>,
    candidates: Vec<Candidate>,
}

impl OmsState {
    pub(crate) fn new<S: NodeStream>(oms: &OnlineMultiSection, stream: &S) -> Self {
        let tree = &oms.tree;
        let n = stream.num_nodes();
        let max_fan_out = (0..tree.num_nodes() as u32)
            .map(|v| tree.children(v).len())
            .max()
            .unwrap_or(1)
            .max(1);
        OmsState {
            assignments: vec![UNASSIGNED; n],
            node_weights: vec![0; n],
            tree_weights: vec![0; tree.num_nodes()],
            capacities: tree.capacities(stream.total_node_weight(), oms.config.epsilon),
            alphas: tree.alphas(stream.num_edges(), n, oms.config.alpha_mode),
            conn: vec![0; max_fan_out],
            candidates: Vec::with_capacity(max_fan_out),
        }
    }

    /// Routes one streamed node down the tree and records its assignment.
    pub(crate) fn assign(&mut self, oms: &OnlineMultiSection, node: oms_graph::StreamedNode<'_>) {
        let tree = &oms.tree;
        let mut cur = tree.root();
        loop {
            let children = tree.children(cur);
            if children.is_empty() {
                break;
            }
            let child_depth = tree.depth(cur) as usize + 1;
            let chosen_idx = if oms.hybrid_uses_hashing(child_depth) {
                // Mix the subproblem id into the seed so different
                // subproblems shuffle nodes independently.
                select_hashing(
                    children.len(),
                    node.node,
                    oms.config.seed ^ (cur as u64).wrapping_mul(0x9E3779B97F4A7C15),
                )
            } else {
                self.score_children(oms, cur, children, &node)
            };
            let chosen = children[chosen_idx];
            self.tree_weights[chosen as usize] += node.weight;
            cur = chosen;
        }
        let block = tree
            .leaf_block(cur)
            .expect("descent always terminates at a leaf");
        self.assignments[node.node as usize] = block;
        self.node_weights[node.node as usize] = node.weight;
    }

    /// Scores the children of `cur` for `node` and returns the index of the
    /// selected child.
    fn score_children(
        &mut self,
        oms: &OnlineMultiSection,
        cur: u32,
        children: &[u32],
        node: &oms_graph::StreamedNode<'_>,
    ) -> usize {
        let tree = &oms.tree;
        let path_index = tree.depth(cur) as usize;
        // Connectivity of the streamed node towards each candidate child:
        // a neighbor assigned to block b contributes to the child that lies
        // on b's tree path, provided b is below `cur` at all.
        self.conn[..children.len()].fill(0);
        for (u, w) in node.neighbors_weighted() {
            let b = self.assignments[u as usize];
            if b == UNASSIGNED {
                continue;
            }
            let path = tree.path_of_block(b);
            if path.len() <= path_index {
                continue;
            }
            if path_index > 0 && path[path_index - 1] != cur {
                continue;
            }
            let child = path[path_index];
            self.conn[tree.child_index(child) as usize] += w;
        }

        self.candidates.clear();
        for (i, &child) in children.iter().enumerate() {
            self.candidates.push(Candidate {
                weight: self.tree_weights[child as usize],
                capacity: self.capacities[child as usize],
                connectivity: self.conn[i],
                alpha: self.alphas[child as usize],
            });
        }
        match oms.config.scorer {
            ScorerKind::Fennel => select_fennel(&self.candidates, node.weight, oms.config.gamma),
            ScorerKind::Ldg => select_ldg(&self.candidates, node.weight),
            ScorerKind::Hashing => unreachable!("handled by hybrid_uses_hashing"),
        }
    }

    /// Removes a node's previous assignment along its whole tree path
    /// (used by restreaming passes).
    pub(crate) fn unassign(&mut self, tree: &MultisectionTree, node: oms_graph::NodeId) {
        let b = self.assignments[node as usize];
        if b == UNASSIGNED {
            return;
        }
        let w = self.node_weights[node as usize];
        for &tree_node in tree.path_of_block(b) {
            self.tree_weights[tree_node as usize] -= w;
        }
        self.assignments[node as usize] = UNASSIGNED;
    }

    pub(crate) fn into_partition(self, k: u32) -> Partition {
        Partition::from_assignments(k, self.assignments, &self.node_weights)
    }

    /// Replaces the assignment array and rebuilds every tree-node weight
    /// along the blocks' paths (the executor's revert-on-worsen guard).
    pub(crate) fn restore(&mut self, tree: &MultisectionTree, assignments: &[BlockId]) {
        self.assignments.copy_from_slice(assignments);
        self.tree_weights.fill(0);
        for (v, &b) in self.assignments.iter().enumerate() {
            if b == UNASSIGNED {
                continue;
            }
            let w = self.node_weights[v];
            for &tree_node in tree.path_of_block(b) {
                self.tree_weights[tree_node as usize] += w;
            }
        }
    }
}

/// The multi-section descent as a [`NodeSink`]. From the second pass on
/// (restreaming / remapping), each node's previous assignment is removed
/// along its whole tree path before the descent is re-run.
pub(crate) struct OmsSink<'a> {
    oms: &'a OnlineMultiSection,
    state: OmsState,
    restreaming: bool,
}

impl<'a> OmsSink<'a> {
    pub(crate) fn new<S: NodeStream>(oms: &'a OnlineMultiSection, stream: &S) -> Self {
        OmsSink {
            oms,
            state: OmsState::new(oms, stream),
            restreaming: false,
        }
    }

    pub(crate) fn into_partition(self) -> Partition {
        self.state.into_partition(self.oms.tree.num_blocks())
    }
}

impl NodeSink for OmsSink<'_> {
    fn begin_pass(&mut self, pass: usize) {
        self.restreaming = pass > 0;
    }

    fn process(&mut self, node: oms_graph::StreamedNode<'_>) {
        if self.restreaming {
            self.state.unassign(self.oms.tree(), node.node);
        }
        self.state.assign(self.oms, node);
    }

    fn assignments(&self) -> Option<&[BlockId]> {
        Some(&self.state.assignments)
    }

    fn num_blocks(&self) -> u32 {
        self.oms.tree.num_blocks()
    }

    fn restore(&mut self, assignments: &[BlockId]) -> bool {
        self.state.restore(self.oms.tree(), assignments);
        true
    }
}

impl StreamingPartitioner for OnlineMultiSection {
    fn partition_stream<S: NodeStream>(&self, stream: &mut S) -> Result<Partition> {
        let mut sink = OmsSink::new(self, stream);
        BatchExecutor::default().run(stream, &mut sink)?;
        Ok(sink.into_partition())
    }

    fn num_blocks(&self) -> u32 {
        self.tree.num_blocks()
    }

    fn name(&self) -> &'static str {
        "oms"
    }
}

impl OnlineMultiSection {
    /// Convenience wrapper streaming an in-memory graph in natural order.
    pub fn partition_graph(&self, graph: &CsrGraph) -> Result<Partition> {
        self.partition_stream(&mut InMemoryStream::new(graph))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AlphaMode, OmsConfig, ScorerKind};
    use crate::onepass::{Fennel, Hashing};
    use crate::OnePassConfig;
    use oms_gen::planted_partition;

    fn two_cliques() -> CsrGraph {
        let mut edges = Vec::new();
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                edges.push((u, v));
                edges.push((u + 5, v + 5));
            }
        }
        edges.push((0, 5));
        CsrGraph::from_edges(10, &edges).unwrap()
    }

    #[test]
    fn oms_with_hierarchy_produces_valid_partition() {
        let g = planted_partition(200, 8, 0.2, 0.01, 3);
        let h = HierarchySpec::parse("2:2:2").unwrap();
        let oms = OnlineMultiSection::with_hierarchy(h, OmsConfig::default());
        let p = oms.partition_graph(&g).unwrap();
        assert_eq!(p.num_blocks(), 8);
        assert_eq!(p.num_nodes(), 200);
        assert!(p.validate(&vec![1; 200]));
        assert!(p.is_balanced(0.03 + 1e-9), "imbalance {}", p.imbalance());
    }

    #[test]
    fn oms_flat_produces_valid_partition_for_non_power_of_base() {
        let g = planted_partition(300, 10, 0.15, 0.01, 5);
        for k in [3u32, 5, 10, 13, 37] {
            let oms = OnlineMultiSection::flat(k, OmsConfig::default()).unwrap();
            let p = oms.partition_graph(&g).unwrap();
            assert_eq!(p.num_blocks(), k);
            assert!(
                p.is_balanced(0.03 + 1e-9),
                "k={k} imbalance {}",
                p.imbalance()
            );
            assert_eq!(p.num_nodes(), 300);
        }
    }

    #[test]
    fn oms_separates_two_cliques_with_ldg_scorer() {
        // With the LDG scorer and ε = 0, the first clique exactly fills one
        // block and the second clique is forced into the other, cutting only
        // the bridge edge (the Fennel scorer's additive penalty spreads the
        // first few nodes on such tiny graphs — see the baseline tests).
        let g = two_cliques();
        let oms =
            OnlineMultiSection::flat(2, OmsConfig::default().epsilon(0.0).scorer(ScorerKind::Ldg))
                .unwrap();
        let p = oms.partition_graph(&g).unwrap();
        assert_eq!(p.edge_cut(&g), 1);
        assert!(p.is_balanced(0.0));
    }

    #[test]
    fn nh_oms_cut_is_close_to_fennel_and_better_than_hashing() {
        // Headline relationship of the paper (Fig. 2b): Fennel cuts slightly
        // fewer edges than nh-OMS; both cut far fewer than Hashing.
        let g = planted_partition(600, 16, 0.12, 0.004, 11);
        let k = 16;
        let fennel = Fennel::new(k, OnePassConfig::default())
            .partition_graph(&g)
            .unwrap();
        let hashing = Hashing::new(k, OnePassConfig::default())
            .partition_graph(&g)
            .unwrap();
        let oms = OnlineMultiSection::flat(k, OmsConfig::default())
            .unwrap()
            .partition_graph(&g)
            .unwrap();
        let (c_f, c_h, c_o) = (fennel.edge_cut(&g), hashing.edge_cut(&g), oms.edge_cut(&g));
        assert!(c_o < c_h, "oms {c_o} must beat hashing {c_h}");
        // nh-OMS may cut somewhat more than Fennel (paper: ~5 % more); allow
        // a generous factor to keep the test robust.
        assert!(
            (c_o as f64) < 2.0 * c_f as f64 + 10.0,
            "oms {c_o} too far from fennel {c_f}"
        );
    }

    #[test]
    fn oms_single_block_assigns_everything_to_block_zero() {
        let g = two_cliques();
        let oms = OnlineMultiSection::flat(1, OmsConfig::default()).unwrap();
        let p = oms.partition_graph(&g).unwrap();
        assert!(p.assignments().iter().all(|&b| b == 0));
    }

    #[test]
    fn oms_with_ldg_scorer_works() {
        let g = planted_partition(200, 8, 0.2, 0.01, 7);
        let oms =
            OnlineMultiSection::flat(8, OmsConfig::default().scorer(ScorerKind::Ldg)).unwrap();
        let p = oms.partition_graph(&g).unwrap();
        assert!(p.is_balanced(0.03 + 1e-9));
        let hashing = Hashing::new(8, OnePassConfig::default())
            .partition_graph(&g)
            .unwrap();
        assert!(p.edge_cut(&g) <= hashing.edge_cut(&g));
    }

    #[test]
    fn oms_with_hashing_scorer_matches_multi_level_hashing_balance() {
        let g = planted_partition(400, 8, 0.1, 0.01, 9);
        let oms =
            OnlineMultiSection::flat(8, OmsConfig::default().scorer(ScorerKind::Hashing)).unwrap();
        let p = oms.partition_graph(&g).unwrap();
        assert_eq!(p.num_nodes(), 400);
        // Hashing ignores balance constraints but should remain statistically
        // balanced.
        assert!(p.imbalance() < 0.5, "imbalance {}", p.imbalance());
    }

    #[test]
    fn hybrid_hashing_layers_degrade_quality_but_keep_validity() {
        let g = planted_partition(500, 16, 0.12, 0.004, 13);
        let h = HierarchySpec::parse("2:2:2:2").unwrap();
        let pure = OnlineMultiSection::with_hierarchy(h.clone(), OmsConfig::default())
            .partition_graph(&g)
            .unwrap();
        let hybrid =
            OnlineMultiSection::with_hierarchy(h, OmsConfig::default().hashing_bottom_layers(2))
                .partition_graph(&g)
                .unwrap();
        assert_eq!(hybrid.num_nodes(), 500);
        assert!(hybrid.edge_cut(&g) >= pure.edge_cut(&g));
    }

    #[test]
    fn hybrid_layer_selection_counts_from_bottom() {
        let h = HierarchySpec::parse("2:2:2").unwrap();
        let oms =
            OnlineMultiSection::with_hierarchy(h, OmsConfig::default().hashing_bottom_layers(2));
        // Tree depth 3: the decision at child depth 1 (top layer) stays with
        // Fennel, the ones at depths 2 and 3 use Hashing.
        assert!(!oms.hybrid_uses_hashing(1));
        assert!(oms.hybrid_uses_hashing(2));
        assert!(oms.hybrid_uses_hashing(3));
    }

    #[test]
    fn adapted_alpha_differs_from_global_alpha_in_results_or_quality() {
        let g = planted_partition(400, 16, 0.1, 0.01, 17);
        let h = HierarchySpec::parse("4:4").unwrap();
        let adapted = OnlineMultiSection::with_hierarchy(h.clone(), OmsConfig::default())
            .partition_graph(&g)
            .unwrap();
        let global = OnlineMultiSection::with_hierarchy(
            h,
            OmsConfig::default().alpha_mode(AlphaMode::Global),
        )
        .partition_graph(&g)
        .unwrap();
        // Both must be valid; they will usually differ.
        assert!(adapted.is_balanced(0.031));
        assert_eq!(global.num_nodes(), 400);
    }

    #[test]
    fn oms_is_deterministic() {
        let g = planted_partition(300, 8, 0.15, 0.01, 19);
        let make = || {
            OnlineMultiSection::flat(8, OmsConfig::default().seed(5))
                .unwrap()
                .partition_graph(&g)
                .unwrap()
        };
        assert_eq!(make(), make());
    }

    #[test]
    fn zero_blocks_is_rejected() {
        assert!(OnlineMultiSection::flat(0, OmsConfig::default()).is_err());
        assert!(OnlineMultiSection::flat(4, OmsConfig::default().base_b(1)).is_err());
    }

    #[test]
    fn streaming_partitioner_trait_is_implemented() {
        let oms = OnlineMultiSection::flat(4, OmsConfig::default()).unwrap();
        assert_eq!(oms.name(), "oms");
        assert_eq!(oms.num_blocks(), 4);
    }

    #[test]
    fn hierarchy_partition_has_lower_mapping_cost_than_hashing() {
        // The headline process-mapping claim (Fig. 2a): on a hierarchy
        // S = 2:2:2 with distances D = 1:10:100, OMS produces a mapping with
        // a far lower communication cost J than a random (Hashing)
        // assignment.
        let g = planted_partition(400, 8, 0.15, 0.004, 23);
        let h = HierarchySpec::parse("2:2:2").unwrap();
        let d = crate::DistanceSpec::paper_default();
        let cost = |p: &Partition| -> u64 {
            g.edges()
                .map(|(u, v, w)| w * d.distance(&h, p.block_of(u), p.block_of(v)))
                .sum()
        };
        let oms = OnlineMultiSection::with_hierarchy(h.clone(), OmsConfig::default())
            .partition_graph(&g)
            .unwrap();
        let hashing = Hashing::new(8, OnePassConfig::default())
            .partition_graph(&g)
            .unwrap();
        assert!(
            cost(&oms) < cost(&hashing),
            "OMS mapping cost {} must beat Hashing {}",
            cost(&oms),
            cost(&hashing)
        );
    }
}
