//! End-to-end tests of the `oms` command-line tool: generate a graph,
//! inspect it, convert it, partition it and map it, checking exit codes and
//! output files.

use std::path::PathBuf;
use std::process::Command;

fn oms() -> Command {
    Command::new(env!("CARGO_BIN_EXE_oms"))
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("oms-cli-tests").join(name);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn no_arguments_prints_usage_and_fails() {
    let output = oms().output().unwrap();
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("usage"), "stderr was: {stderr}");
}

#[test]
fn unknown_command_fails_with_exit_code_one() {
    let output = oms().arg("frobnicate").output().unwrap();
    assert_eq!(output.status.code(), Some(1));
}

#[test]
fn generate_info_partition_roundtrip() {
    let dir = temp_dir("roundtrip");
    let graph_path = dir.join("rgg.metis");
    let partition_path = dir.join("partition.txt");

    // generate
    let output = oms()
        .args(["generate", "rgg", "2000"])
        .arg(&graph_path)
        .args(["--seed", "7"])
        .output()
        .unwrap();
    assert!(
        output.status.success(),
        "{}",
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(graph_path.exists());

    // info
    let output = oms().arg("info").arg(&graph_path).output().unwrap();
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("nodes        : 2000"),
        "stdout was: {stdout}"
    );

    // partition with nh-OMS and write the assignment file
    let output = oms()
        .arg("partition")
        .arg(&graph_path)
        .args(["--k", "16", "--algo", "oms", "--output"])
        .arg(&partition_path)
        .output()
        .unwrap();
    assert!(
        output.status.success(),
        "{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("edge-cut"), "stdout was: {stdout}");
    let lines = std::fs::read_to_string(&partition_path).unwrap();
    assert_eq!(lines.lines().count(), 2000);
    assert!(lines
        .lines()
        .all(|l| l.parse::<u32>().map(|b| b < 16).unwrap_or(false)));
}

#[test]
fn convert_and_map_from_stream_format() {
    let dir = temp_dir("map");
    let metis_path = dir.join("ba.metis");
    let stream_path = dir.join("ba.oms");

    let output = oms()
        .args(["generate", "ba", "1500"])
        .arg(&metis_path)
        .output()
        .unwrap();
    assert!(output.status.success());

    let output = oms()
        .arg("convert")
        .arg(&metis_path)
        .arg(&stream_path)
        .output()
        .unwrap();
    assert!(
        output.status.success(),
        "{}",
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(stream_path.exists());

    let output = oms()
        .arg("map")
        .arg(&stream_path)
        .args(["--hierarchy", "2:2:4", "--distances", "1:10:100"])
        .output()
        .unwrap();
    assert!(
        output.status.success(),
        "{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("mapping cost"), "stdout was: {stdout}");
    assert!(stdout.contains("k = 16 PEs"), "stdout was: {stdout}");
}

#[test]
fn unknown_option_is_rejected() {
    let dir = temp_dir("unknown-option");
    let graph_path = dir.join("g.metis");
    oms()
        .args(["generate", "grid", "100"])
        .arg(&graph_path)
        .output()
        .unwrap();
    let output = oms()
        .arg("partition")
        .arg(&graph_path)
        .args(["--k", "4", "--frobnicate", "1"])
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("unknown option"), "stderr was: {stderr}");
}

#[test]
fn option_without_value_is_rejected() {
    let dir = temp_dir("dangling-option");
    let graph_path = dir.join("g.metis");
    oms()
        .args(["generate", "grid", "100"])
        .arg(&graph_path)
        .output()
        .unwrap();
    let output = oms()
        .arg("partition")
        .arg(&graph_path)
        .arg("--k")
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("requires a value"), "stderr was: {stderr}");
}

#[test]
fn algorithms_command_lists_the_registry() {
    let output = oms().arg("algorithms").output().unwrap();
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    for name in [
        "hashing",
        "ldg",
        "fennel",
        "oms",
        "nh-oms",
        "multilevel",
        "rms",
        "buffered",
        "e-hash",
        "e-dbh",
        "e-greedy",
    ] {
        assert!(stdout.contains(name), "missing '{name}' in: {stdout}");
    }
    assert!(stdout.contains("vertex-cut"), "stdout was: {stdout}");
}

#[test]
fn info_prints_the_degree_skew_summary() {
    let dir = temp_dir("degree-skew");
    let graph_path = dir.join("ba.metis");
    let output = oms()
        .args(["generate", "ba", "2000"])
        .arg(&graph_path)
        .args(["--seed", "5"])
        .output()
        .unwrap();
    assert!(output.status.success());

    let output = oms().arg("info").arg(&graph_path).output().unwrap();
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("p99 degree   :"), "stdout was: {stdout}");
    assert!(stdout.contains("degree skew  :"), "stdout was: {stdout}");
    assert!(stdout.contains("p99/max"), "stdout was: {stdout}");
    // Preferential attachment produces hubs: the skew ratio must come out
    // well below 1 on a BA graph.
    let skew: f64 = stdout
        .lines()
        .find(|l| l.starts_with("degree skew"))
        .and_then(|l| l.split(':').nth(1))
        .and_then(|v| v.trim().split(' ').next())
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("no skew value in: {stdout}"));
    assert!(skew < 0.8, "BA graphs are hub-dominated, got skew {skew}");
}

#[test]
fn edge_partitioning_reports_replication_and_writes_edge_assignments() {
    let dir = temp_dir("edgepart");
    let graph_path = dir.join("ba.metis");
    let out_path = dir.join("edges.txt");
    let output = oms()
        .args(["generate", "ba", "1500"])
        .arg(&graph_path)
        .args(["--seed", "7"])
        .output()
        .unwrap();
    assert!(output.status.success());

    let output = oms()
        .arg("partition")
        .arg(&graph_path)
        .args([
            "--k", "8", "--algo", "e-greedy", "--lambda", "1.5", "--output",
        ])
        .arg(&out_path)
        .output()
        .unwrap();
    assert!(
        output.status.success(),
        "{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("vertex-cut"), "stdout was: {stdout}");
    assert!(stdout.contains("replication :"), "stdout was: {stdout}");
    assert!(stdout.contains("lambda=1.5"), "stdout was: {stdout}");
    assert!(stdout.contains("edge-balance:"), "stdout was: {stdout}");

    // One "u v block" line per edge, blocks in range.
    let lines = std::fs::read_to_string(&out_path).unwrap();
    assert!(lines.lines().count() > 1000);
    for line in lines.lines() {
        let fields: Vec<&str> = line.split(' ').collect();
        assert_eq!(fields.len(), 3, "line was: {line}");
        let b: u32 = fields[2].parse().unwrap();
        assert!(b < 8, "line was: {line}");
    }

    // Multi-pass e-* runs print a replication trajectory.
    let output = oms()
        .arg("partition")
        .arg(&graph_path)
        .args(["--k", "8", "--algo", "e-greedy", "--passes", "3"])
        .output()
        .unwrap();
    assert!(
        output.status.success(),
        "{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("pass  0"), "stdout was: {stdout}");
    assert!(stdout.contains("replication"), "stdout was: {stdout}");

    // threads= cannot mean anything for the sequential edge pipeline.
    let output = oms()
        .arg("partition")
        .arg(&graph_path)
        .args(["--k", "8", "--algo", "e-hash", "--threads", "4"])
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(1));
}

#[test]
fn partition_with_buffered_algorithm_and_buffer_flag() {
    let dir = temp_dir("buffered");
    let graph_path = dir.join("g.metis");
    oms()
        .args(["generate", "rgg", "1200"])
        .arg(&graph_path)
        .output()
        .unwrap();
    let output = oms()
        .arg("partition")
        .arg(&graph_path)
        .args(["--k", "8", "--algo", "buffered", "--buffer", "256"])
        .output()
        .unwrap();
    assert!(
        output.status.success(),
        "{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("buffered:8@buf=256"),
        "the job line must carry buf=: {stdout}"
    );
    assert!(stdout.contains("algorithm  : buffered"), "{stdout}");

    // The same job via --job round-trips through the spec string.
    let output = oms()
        .arg("partition")
        .arg(&graph_path)
        .args(["--job", "buffered:8@buf=256"])
        .output()
        .unwrap();
    assert!(
        output.status.success(),
        "{}",
        String::from_utf8_lossy(&output.stderr)
    );
}

#[test]
fn partition_accepts_a_full_job_spec() {
    let dir = temp_dir("job-spec");
    let graph_path = dir.join("g.metis");
    oms()
        .args(["generate", "rgg", "1000"])
        .arg(&graph_path)
        .output()
        .unwrap();
    let output = oms()
        .arg("partition")
        .arg(&graph_path)
        .args(["--job", "fennel:8@passes=2,eps=0.05"])
        .output()
        .unwrap();
    assert!(
        output.status.success(),
        "{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("fennel:8@eps=0.05,passes=2"),
        "stdout was: {stdout}"
    );
    assert!(stdout.contains("edge-cut"), "stdout was: {stdout}");

    // --job plus a conflicting per-field flag is a usage error.
    let output = oms()
        .arg("partition")
        .arg(&graph_path)
        .args(["--job", "fennel:8", "--k", "4"])
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(1));
}

#[test]
fn partition_requires_k() {
    let dir = temp_dir("missing-k");
    let graph_path = dir.join("g.metis");
    oms()
        .args(["generate", "grid", "100"])
        .arg(&graph_path)
        .output()
        .unwrap();
    let output = oms().arg("partition").arg(&graph_path).output().unwrap();
    assert_eq!(output.status.code(), Some(1));
}

#[test]
fn partition_with_passes_prints_the_trajectory() {
    let dir = temp_dir("passes");
    let graph_path = dir.join("sbm.metis");
    let output = oms()
        .args(["generate", "er", "1500"])
        .arg(&graph_path)
        .args(["--seed", "11"])
        .output()
        .unwrap();
    assert!(output.status.success());

    let output = oms()
        .arg("partition")
        .arg(&graph_path)
        .args([
            "--k", "8", "--algo", "fennel", "--passes", "3", "--seed", "3",
        ])
        .output()
        .unwrap();
    assert!(
        output.status.success(),
        "{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("passes=3"), "stdout was: {stdout}");
    assert!(stdout.contains("pass  0"), "stdout was: {stdout}");
    assert!(stdout.contains("pass  1"), "stdout was: {stdout}");

    // --converge plumbs through to the job spec (conv=).
    let output = oms()
        .arg("partition")
        .arg(&graph_path)
        .args([
            "--k",
            "8",
            "--algo",
            "ldg",
            "--passes",
            "5",
            "--converge",
            "0.05",
        ])
        .output()
        .unwrap();
    assert!(
        output.status.success(),
        "{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("passes=5,conv=0.05"),
        "stdout was: {stdout}"
    );
}

#[test]
fn weighted_generate_partition_and_info() {
    let dir = temp_dir("weighted");
    let graph_path = dir.join("weighted.metis");

    // generate with the full weighting scheme
    let output = oms()
        .args(["generate", "ba", "1500"])
        .arg(&graph_path)
        .args(["--seed", "7", "--weights", "full"])
        .output()
        .unwrap();
    assert!(
        output.status.success(),
        "{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("weights = full"), "stdout was: {stdout}");

    // info reports it as weighted
    let output = oms().arg("info").arg(&graph_path).output().unwrap();
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("unweighted   : false"),
        "stdout was: {stdout}"
    );
    assert!(stdout.contains("edge weight"), "stdout was: {stdout}");

    // weighted partitions surface c(V), ω(E) and the heaviest block
    let output = oms()
        .arg("partition")
        .arg(&graph_path)
        .args(["--k", "8", "--algo", "fennel"])
        .output()
        .unwrap();
    assert!(
        output.status.success(),
        "{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("weights    : c(V) ="),
        "stdout was: {stdout}"
    );
    assert!(stdout.contains("max block ="), "stdout was: {stdout}");

    // a bad --weights value is a usage error
    let output = oms()
        .args(["generate", "ba", "100"])
        .arg(dir.join("bad.metis"))
        .args(["--weights", "frobnicate"])
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(1));
}

#[test]
fn format_flag_overrides_extension_sniffing() {
    let dir = temp_dir("format-flag");
    // A METIS file under an extension that auto-sniffs as edge list.
    let metis_path = dir.join("g.metis");
    let odd_path = dir.join("g.txt");
    let output = oms()
        .args(["generate", "grid", "400"])
        .arg(&metis_path)
        .output()
        .unwrap();
    assert!(output.status.success());
    std::fs::copy(&metis_path, &odd_path).unwrap();

    // Auto-sniffing misreads it; --format metis fixes it.
    let output = oms()
        .arg("info")
        .arg(&odd_path)
        .args(["--format", "metis"])
        .output()
        .unwrap();
    assert!(
        output.status.success(),
        "{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("nodes        : 400"),
        "stdout was: {stdout}"
    );

    // An unknown format value is a usage error.
    let output = oms()
        .arg("info")
        .arg(&metis_path)
        .args(["--format", "hdf5"])
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("unknown input format"), "stderr: {stderr}");

    // partition accepts --format too.
    let output = oms()
        .arg("partition")
        .arg(&odd_path)
        .args(["--format", "metis", "--k", "4", "--algo", "ldg"])
        .output()
        .unwrap();
    assert!(
        output.status.success(),
        "{}",
        String::from_utf8_lossy(&output.stderr)
    );
}

#[test]
fn convert_round_trips_weighted_graphs_through_both_formats() {
    let dir = temp_dir("weighted-convert");
    let metis_path = dir.join("w.metis");
    let stream_path = dir.join("w.oms");
    let back_path = dir.join("w-back.metis");

    let output = oms()
        .args(["generate", "er", "600"])
        .arg(&metis_path)
        .args(["--seed", "3", "--weights", "full"])
        .output()
        .unwrap();
    assert!(output.status.success());

    // METIS → vertex stream → METIS; the final info must agree with the
    // first (identical n, m and total weights).
    for (from, to) in [(&metis_path, &stream_path), (&stream_path, &back_path)] {
        let output = oms().arg("convert").arg(from).arg(to).output().unwrap();
        assert!(
            output.status.success(),
            "{}",
            String::from_utf8_lossy(&output.stderr)
        );
    }
    let info = |path: &std::path::Path| {
        let output = oms().arg("info").arg(path).output().unwrap();
        assert!(output.status.success());
        let text = String::from_utf8_lossy(&output.stdout).to_string();
        // Strip the file line and the stream-only section breakdown (which
        // METIS inputs don't have); the shared stats must match.
        text.lines()
            .filter(|l| !l.starts_with("file"))
            .take_while(|l| !l.starts_with("stream format"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(info(&metis_path), info(&stream_path));
    assert_eq!(info(&metis_path), info(&back_path));
}

#[test]
fn partition_passes_works_for_in_memory_and_buffered_algorithms() {
    let dir = temp_dir("passes-registry");
    let graph_path = dir.join("er.metis");
    let output = oms()
        .args(["generate", "er", "800"])
        .arg(&graph_path)
        .args(["--seed", "13"])
        .output()
        .unwrap();
    assert!(output.status.success());
    for algo in ["multilevel", "buffered", "hashing", "oms"] {
        let output = oms()
            .arg("partition")
            .arg(&graph_path)
            .args(["--k", "4", "--algo", algo, "--passes", "2"])
            .output()
            .unwrap();
        assert!(
            output.status.success(),
            "{algo}: {}",
            String::from_utf8_lossy(&output.stderr)
        );
    }
}
