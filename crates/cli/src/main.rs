//! `oms` — command-line streaming graph partitioning and process mapping.
//!
//! ```text
//! oms partition <graph.metis|graph.oms> --k 256 [--algo oms|fennel|ldg|hashing|multilevel]
//!               [--epsilon 0.03] [--threads 4] [--output partition.txt]
//! oms map       <graph.metis|graph.oms> --hierarchy 4:16:8 --distances 1:10:100
//!               [--algo oms|fennel|hashing] [--output mapping.txt]
//! oms convert   <graph.metis> <graph.oms>     # to the binary vertex-stream format
//! oms generate  <family> <n> <out.metis>      # rgg | delaunay | ba | rmat | grid | er
//! oms info      <graph.metis|graph.oms>
//! ```
//!
//! Exit code 0 on success, 1 on user error, 2 on internal error.

use oms_core::{
    Fennel, Hashing, HierarchySpec, Ldg, OmsConfig, OnePassConfig, OnlineMultiSection,
    Partition, StreamingPartitioner,
};
use oms_graph::io::{read_edge_list, read_metis, read_stream_file, write_metis, write_stream_file};
use oms_graph::CsrGraph;
use oms_mapping::{mapping_cost, Topology};
use oms_metrics::{edge_cut, measure};
use oms_multilevel::{MultilevelConfig, MultilevelPartitioner};
use std::collections::HashMap;
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(Error::Usage(msg)) => {
            eprintln!("error: {msg}\n");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
        Err(Error::Internal(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage:
  oms partition <graph> --k <k> [--algo oms|fennel|ldg|hashing|multilevel] [--epsilon 0.03] [--threads T] [--output FILE]
  oms map       <graph> --hierarchy a1:a2:... [--distances d1:d2:...] [--algo oms|fennel|hashing] [--threads T] [--output FILE]
  oms convert   <in.metis|in.txt> <out.oms>
  oms generate  <rgg|delaunay|ba|rmat|grid|er> <n> <out.metis> [--seed S]
  oms info      <graph>";

enum Error {
    Usage(String),
    Internal(String),
}

impl From<oms_graph::GraphError> for Error {
    fn from(e: oms_graph::GraphError) -> Self {
        Error::Internal(format!("graph error: {e}"))
    }
}

impl From<oms_core::PartitionError> for Error {
    fn from(e: oms_core::PartitionError) -> Self {
        Error::Internal(format!("partitioning error: {e}"))
    }
}

fn run(args: &[String]) -> Result<(), Error> {
    let Some(command) = args.first() else {
        return Err(Error::Usage("missing command".into()));
    };
    let rest = &args[1..];
    match command.as_str() {
        "partition" => partition_command(rest),
        "map" => map_command(rest),
        "convert" => convert_command(rest),
        "generate" => generate_command(rest),
        "info" => info_command(rest),
        other => Err(Error::Usage(format!("unknown command '{other}'"))),
    }
}

/// Splits positional arguments from `--flag value` options.
fn split_options(args: &[String]) -> (Vec<String>, HashMap<String, String>) {
    let mut positional = Vec::new();
    let mut options = HashMap::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if let Some(name) = arg.strip_prefix("--") {
            let value = iter.next().cloned().unwrap_or_default();
            options.insert(name.to_string(), value);
        } else {
            positional.push(arg.clone());
        }
    }
    (positional, options)
}

fn load_graph(path: &str) -> Result<CsrGraph, Error> {
    let p = Path::new(path);
    let ext = p.extension().and_then(|e| e.to_str()).unwrap_or("");
    let graph = match ext {
        "oms" => read_stream_file(p)?,
        "txt" | "edges" | "el" => read_edge_list(p, None)?,
        _ => read_metis(p)?,
    };
    Ok(graph)
}

fn write_assignments(path: &str, assignments: &[u32]) -> Result<(), Error> {
    let body: String = assignments
        .iter()
        .map(|b| format!("{b}\n"))
        .collect();
    std::fs::write(path, body).map_err(|e| Error::Internal(format!("cannot write {path}: {e}")))
}

fn partition_command(args: &[String]) -> Result<(), Error> {
    let (positional, options) = split_options(args);
    let Some(path) = positional.first() else {
        return Err(Error::Usage("partition: missing graph file".into()));
    };
    let k: u32 = options
        .get("k")
        .ok_or_else(|| Error::Usage("partition: --k is required".into()))?
        .parse()
        .map_err(|_| Error::Usage("partition: --k must be a positive integer".into()))?;
    let epsilon: f64 = options
        .get("epsilon")
        .map(|s| s.parse().unwrap_or(0.03))
        .unwrap_or(0.03);
    let threads: usize = options
        .get("threads")
        .map(|s| s.parse().unwrap_or(1))
        .unwrap_or(1);
    let algo = options.get("algo").map(|s| s.as_str()).unwrap_or("oms");

    let graph = load_graph(path)?;
    let one_pass = OnePassConfig::default().epsilon(epsilon);
    let oms_cfg = OmsConfig::default().epsilon(epsilon);
    let (partition, secs): (Partition, f64) = match algo {
        "oms" => {
            let oms = OnlineMultiSection::flat(k, oms_cfg)?;
            if threads > 1 {
                measure(|| oms.partition_graph_parallel(&graph, threads).unwrap())
            } else {
                measure(|| oms.partition_graph(&graph).unwrap())
            }
        }
        "fennel" => measure(|| Fennel::new(k, one_pass).partition_graph(&graph).unwrap()),
        "ldg" => measure(|| Ldg::new(k, one_pass).partition_graph(&graph).unwrap()),
        "hashing" => measure(|| Hashing::new(k, one_pass).partition_graph(&graph).unwrap()),
        "multilevel" => {
            let cfg = MultilevelConfig {
                epsilon,
                threads,
                ..MultilevelConfig::default()
            };
            measure(|| MultilevelPartitioner::new(k, cfg).partition(&graph).unwrap())
        }
        other => return Err(Error::Usage(format!("unknown algorithm '{other}'"))),
    };

    println!("graph      : {path} (n = {}, m = {})", graph.num_nodes(), graph.num_edges());
    println!("algorithm  : {algo}, k = {k}, epsilon = {epsilon}");
    println!("edge-cut   : {}", edge_cut(&graph, partition.assignments()));
    println!("imbalance  : {:.4}", partition.imbalance());
    println!("time       : {secs:.4} s");
    if let Some(output) = options.get("output") {
        write_assignments(output, partition.assignments())?;
        println!("partition written to {output}");
    }
    Ok(())
}

fn map_command(args: &[String]) -> Result<(), Error> {
    let (positional, options) = split_options(args);
    let Some(path) = positional.first() else {
        return Err(Error::Usage("map: missing graph file".into()));
    };
    let hierarchy = options
        .get("hierarchy")
        .ok_or_else(|| Error::Usage("map: --hierarchy is required (e.g. 4:16:8)".into()))?;
    let distances = options
        .get("distances")
        .cloned()
        .unwrap_or_else(|| "1:10:100".to_string());
    let threads: usize = options
        .get("threads")
        .map(|s| s.parse().unwrap_or(1))
        .unwrap_or(1);
    let algo = options.get("algo").map(|s| s.as_str()).unwrap_or("oms");

    let hierarchy = HierarchySpec::parse(hierarchy)?;
    let topology = Topology::parse(&hierarchy.to_string_spec(), &distances)?;
    let k = topology.num_pes();
    let graph = load_graph(path)?;

    let (partition, secs): (Partition, f64) = match algo {
        "oms" => {
            let oms = OnlineMultiSection::with_hierarchy(hierarchy, OmsConfig::default());
            if threads > 1 {
                measure(|| oms.partition_graph_parallel(&graph, threads).unwrap())
            } else {
                measure(|| oms.partition_graph(&graph).unwrap())
            }
        }
        "fennel" => measure(|| {
            Fennel::new(k, OnePassConfig::default())
                .partition_graph(&graph)
                .unwrap()
        }),
        "hashing" => measure(|| {
            Hashing::new(k, OnePassConfig::default())
                .partition_graph(&graph)
                .unwrap()
        }),
        other => return Err(Error::Usage(format!("unknown mapping algorithm '{other}'"))),
    };

    println!("graph        : {path} (n = {}, m = {})", graph.num_nodes(), graph.num_edges());
    println!("topology     : S = {}, D = {}", topology.hierarchy().to_string_spec(), distances);
    println!("algorithm    : {algo}, k = {k} PEs");
    println!("mapping cost : {}", mapping_cost(&graph, partition.assignments(), &topology));
    println!("edge-cut     : {}", edge_cut(&graph, partition.assignments()));
    println!("imbalance    : {:.4}", partition.imbalance());
    println!("time         : {secs:.4} s");
    if let Some(output) = options.get("output") {
        write_assignments(output, partition.assignments())?;
        println!("mapping written to {output}");
    }
    Ok(())
}

fn convert_command(args: &[String]) -> Result<(), Error> {
    let (positional, _) = split_options(args);
    let (Some(input), Some(output)) = (positional.first(), positional.get(1)) else {
        return Err(Error::Usage("convert: need <input> and <output>".into()));
    };
    let graph = load_graph(input)?;
    write_stream_file(&graph, output)?;
    println!(
        "wrote {output} (n = {}, m = {})",
        graph.num_nodes(),
        graph.num_edges()
    );
    Ok(())
}

fn generate_command(args: &[String]) -> Result<(), Error> {
    let (positional, options) = split_options(args);
    let (Some(family), Some(n), Some(output)) =
        (positional.first(), positional.get(1), positional.get(2))
    else {
        return Err(Error::Usage("generate: need <family> <n> <output>".into()));
    };
    let n: usize = n
        .parse()
        .map_err(|_| Error::Usage("generate: <n> must be an integer".into()))?;
    let seed: u64 = options
        .get("seed")
        .map(|s| s.parse().unwrap_or(42))
        .unwrap_or(42);
    let graph = match family.as_str() {
        "rgg" => oms_gen::random_geometric_graph(n, seed),
        "delaunay" => oms_gen::delaunay_graph(n, seed),
        "ba" => oms_gen::barabasi_albert(n.max(5), 4, seed),
        "rmat" => {
            let scale = (n as f64).log2().ceil() as u32;
            oms_gen::rmat_graph(scale, n * 8, oms_gen::RmatParams::GRAPH500, seed)
        }
        "grid" => {
            let side = (n as f64).sqrt().ceil() as usize;
            oms_gen::grid_2d(side, side)
        }
        "er" => oms_gen::erdos_renyi_gnm(n, n * 4, seed),
        other => return Err(Error::Usage(format!("unknown graph family '{other}'"))),
    };
    write_metis(&graph, output)?;
    println!(
        "wrote {output} ({family}, n = {}, m = {})",
        graph.num_nodes(),
        graph.num_edges()
    );
    Ok(())
}

fn info_command(args: &[String]) -> Result<(), Error> {
    let (positional, _) = split_options(args);
    let Some(path) = positional.first() else {
        return Err(Error::Usage("info: missing graph file".into()));
    };
    let graph = load_graph(path)?;
    println!("file         : {path}");
    println!("nodes        : {}", graph.num_nodes());
    println!("edges        : {}", graph.num_edges());
    println!("max degree   : {}", graph.max_degree());
    println!("avg degree   : {:.2}", graph.average_degree());
    println!("total weight : {}", graph.total_node_weight());
    println!("unweighted   : {}", graph.is_unweighted());
    println!(
        "connected    : {}",
        oms_graph::traversal::is_connected(&graph)
    );
    Ok(())
}
