//! `oms` — command-line streaming graph partitioning and process mapping.
//!
//! ```text
//! oms partition <graph.metis|graph.oms> --k 256 [--algo oms|fennel|ldg|hashing|buffered|multilevel|...]
//!               [--epsilon 0.03] [--threads 4] [--passes 1] [--converge 0.0] [--seed 0]
//!               [--buffer 4096] [--format metis|edgelist|stream] [--output partition.txt]
//! oms partition <graph> --k 256 --algo e-hash|e-dbh|e-greedy [--lambda 1.0] [--passes P]
//!               # vertex-cut edge partitioning: reports the replication factor and
//!               # writes one "u v block" line per edge
//! oms partition <graph> --job "oms:4:16:8@eps=0.03,threads=8" [--output FILE]
//! oms map       <graph.metis|graph.oms> --hierarchy 4:16:8 --distances 1:10:100
//!               [--algo oms|fennel|hashing|rms] [--threads T] [--output mapping.txt]
//! oms algorithms                              # list the registered algorithms
//! oms convert   <graph.metis> <graph.oms>     # to/from the binary vertex-stream format
//!               [--stream-version 1|2|3]      # on-disk stream version (default 2; 3 = sectioned)
//! oms generate  <family> <n> <out.metis>      # rgg | delaunay | ba | rmat | grid | er
//!               [--weights unit|nodes|edges|full]   # weighted variants
//! oms gen-deltas <graph> <out.deltas> [--scheme uniform|drift|burst] [--batches B] [--ops O]
//!               [--temporal pa|drift|burst]    # timestamped temporal streams instead of churn
//! oms apply-deltas <graph> <trace.deltas> --k 8 [--algo fennel|ldg|...] [--drift 0.2]
//!               [--repair off|local|boundary] [--window W]  # incremental maintenance vs cold restream
//! oms replay    <graph> --k 8 [--algo fennel|hashing|e-greedy|...] [--requests N] [--hops H]
//!               [--zipf S] [--penalty P] [--replay-seed S]  # traffic replay: hop rate + latency
//! oms trace     <trace.jsonl>                 # summarize a recorded trace, verify its hash
//! oms info      <graph.metis|graph.oms>
//! ```
//!
//! `partition`, `apply-deltas` and `replay` additionally accept
//! `--trace FILE` (record the run's deterministic JSON-lines event trace)
//! and `--metrics` (print a Prometheus-style exposition after the run).
//!
//! `--format` overrides the extension-based sniffing (`.oms` = binary
//! vertex stream, `.txt`/`.edges`/`.el` = edge list, everything else =
//! METIS text); node/edge-weighted graphs are supported in all formats and
//! weighted runs report `c(V)`, `ω(E)` and the heaviest block next to the
//! cut.
//!
//! Every algorithm is dispatched through the shared `oms-core::api` registry:
//! the CLI builds one [`JobSpec`] per invocation and runs whatever
//! `Box<dyn Partitioner>` the registry produces, so new backends registered
//! by library crates are immediately available here.
//!
//! Exit code 0 on success, 1 on user error, 2 on internal error.

use oms_core::{registered_algorithms, JobSpec};
use oms_graph::io::{
    read_edge_list, read_metis, read_stream_file, write_edge_list, write_metis, write_stream_file,
};
use oms_graph::{CsrGraph, EdgesOf, InMemoryStream};
use std::collections::HashMap;
use std::io::Write;
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    // Make the in-memory baselines (multilevel, rms) resolvable by name.
    oms_multilevel::register_algorithms();
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(Error::Usage(msg)) => {
            eprintln!("error: {msg}\n");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
        Err(Error::Internal(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage:
  oms partition  <graph> --k <k> [--algo NAME] [--epsilon 0.03] [--threads T] [--shards S] [--passes P] [--converge EPS] [--seed S] [--buffer B] [--lambda L] [--format F] [--output FILE]
  oms partition  <graph> --job <spec>  (e.g. \"oms:4:16:8@eps=0.03,threads=8\" or \"e-greedy:256@lambda=1.5\") [--output FILE]
  oms map        <graph> --hierarchy a1:a2:... [--distances d1:d2:...] [--algo NAME] [--threads T] [--seed S] [--format F] [--output FILE]
  oms algorithms
  oms convert    <in> <out>  (out format by extension: .oms = vertex stream, .txt/.edges/.el = edge list, else METIS) [--format F] [--stream-version 1|2|3]
  oms generate   <rgg|delaunay|ba|rmat|grid|er> <n> <out.metis> [--seed S] [--weights unit|nodes|edges|full]
  oms gen-deltas <graph> <out.deltas> [--scheme uniform|drift|burst] [--temporal pa|drift|burst] [--batches B] [--ops O] [--node-churn F] [--insert-frac F] [--delete-frac F] [--seed S] [--format F]
  oms apply-deltas <graph> <trace.deltas> --k <k> [--algo NAME] [--drift D] [--repair off|local|boundary] [--window W] [--reference on|off] [usual job flags] [--output FILE]
  oms replay     <graph> --k <k> [--algo NAME | --job SPEC] [--requests N] [--hops H] [--zipf S] [--penalty P] [--arrival T] [--max-backlog B] [--replay-seed S] [usual job flags] [--format F]
  oms trace      <trace.jsonl>  (summarize a trace recorded with --trace and verify its event-log hash)
  oms info       <graph> [--format F]

  --format F selects the input format (auto | metis | edgelist | stream); auto sniffs the extension.
  partition, apply-deltas and replay also accept --trace FILE (record a JSON-lines event trace)
  and --metrics (print a Prometheus-style exposition of the run's counters and histograms).";

enum Error {
    Usage(String),
    Internal(String),
}

impl From<oms_graph::GraphError> for Error {
    fn from(e: oms_graph::GraphError) -> Self {
        Error::Internal(format!("graph error: {e}"))
    }
}

impl From<oms_core::PartitionError> for Error {
    fn from(e: oms_core::PartitionError) -> Self {
        match e {
            // Bad specs are user errors: show the usage text.
            oms_core::PartitionError::InvalidSpec(msg)
            | oms_core::PartitionError::InvalidConfig(msg) => Error::Usage(msg),
            other => Error::Internal(format!("partitioning error: {other}")),
        }
    }
}

fn run(args: &[String]) -> Result<(), Error> {
    let Some(command) = args.first() else {
        return Err(Error::Usage("missing command".into()));
    };
    let rest = &args[1..];
    match command.as_str() {
        "partition" => partition_command(rest),
        "map" => map_command(rest),
        "algorithms" => algorithms_command(rest),
        "convert" => convert_command(rest),
        "generate" => generate_command(rest),
        "gen-deltas" => gen_deltas_command(rest),
        "apply-deltas" => apply_deltas_command(rest),
        "replay" => replay_command(rest),
        "trace" => trace_command(rest),
        "info" => info_command(rest),
        other => Err(Error::Usage(format!("unknown command '{other}'"))),
    }
}

/// Splits positional arguments from `--flag value` options.
///
/// Every option must carry a value and appear in `allowed`; a dangling
/// `--flag` or an unknown flag is a usage error rather than being silently
/// swallowed.
fn split_options(
    args: &[String],
    allowed: &[&str],
) -> Result<(Vec<String>, HashMap<String, String>), Error> {
    let mut positional = Vec::new();
    let mut options = HashMap::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if let Some(name) = arg.strip_prefix("--") {
            if !allowed.contains(&name) {
                return Err(Error::Usage(format!(
                    "unknown option '--{name}' (allowed here: {})",
                    allowed
                        .iter()
                        .map(|o| format!("--{o}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                )));
            }
            let Some(value) = iter.next() else {
                return Err(Error::Usage(format!("option '--{name}' requires a value")));
            };
            if value.starts_with("--") {
                return Err(Error::Usage(format!(
                    "option '--{name}' requires a value, found '{value}'"
                )));
            }
            options.insert(name.to_string(), value.clone());
        } else {
            positional.push(arg.clone());
        }
    }
    Ok((positional, options))
}

/// Strips a valueless `--flag` from the raw argument list before
/// [`split_options`] (which requires every option to carry a value).
fn take_flag(args: &[String], flag: &str) -> (Vec<String>, bool) {
    let mut present = false;
    let mut rest = Vec::with_capacity(args.len());
    for arg in args {
        if arg == flag {
            present = true;
        } else {
            rest.push(arg.clone());
        }
    }
    (rest, present)
}

/// Observability wiring behind `--trace FILE` / `--metrics`: installs a
/// recording observer for the duration of the command; [`ObsSession::finish`]
/// writes the JSON-lines trace and/or prints the Prometheus exposition.
/// With neither flag set, nothing is installed and the engines run with the
/// free no-op observer.
struct ObsSession {
    recording: Option<(std::sync::Arc<oms_obs::ObsCore>, oms_obs::ObsGuard)>,
    trace_path: Option<String>,
    metrics: bool,
}

impl ObsSession {
    fn start(options: &HashMap<String, String>, metrics: bool) -> ObsSession {
        let trace_path = options.get("trace").cloned();
        let recording = (trace_path.is_some() || metrics)
            .then(|| oms_obs::recording(oms_obs::DEFAULT_CAPACITY));
        ObsSession {
            recording,
            trace_path,
            metrics,
        }
    }

    fn finish(self) -> Result<(), Error> {
        let Some((core, guard)) = self.recording else {
            return Ok(());
        };
        drop(guard);
        if let Some(path) = &self.trace_path {
            std::fs::write(path, oms_obs::trace_jsonl(&core))
                .map_err(|e| Error::Internal(format!("cannot write {path}: {e}")))?;
            println!(
                "trace      : {path} ({} events, {} dropped, log hash {:016x})",
                core.recorded(),
                core.dropped(),
                core.log_hash()
            );
        }
        if self.metrics {
            println!();
            print!("{}", oms_obs::prometheus(&core));
        }
        Ok(())
    }
}

/// Input formats accepted by `--format` (default `auto` sniffs the
/// extension: `.oms` = vertex stream, `.txt`/`.edges`/`.el` = edge list,
/// anything else = METIS).
const FORMATS: &[&str] = &["auto", "metis", "edgelist", "stream"];

/// The one extension table shared by input sniffing and `convert`'s output
/// dispatch, so a file written under some extension is read back the same
/// way.
fn sniff_format(path: &Path) -> &'static str {
    match path.extension().and_then(|e| e.to_str()).unwrap_or("") {
        "oms" => "stream",
        "txt" | "edges" | "el" => "edgelist",
        _ => "metis",
    }
}

fn load_graph_as(path: &str, format: Option<&str>) -> Result<CsrGraph, Error> {
    let p = Path::new(path);
    let format = match format.unwrap_or("auto").to_ascii_lowercase().as_str() {
        "auto" => sniff_format(p).to_string(),
        explicit => explicit.to_string(),
    };
    let graph = match format.as_str() {
        "stream" => read_stream_file(p)?,
        "edgelist" => read_edge_list(p, None)?,
        "metis" => read_metis(p)?,
        other => {
            return Err(Error::Usage(format!(
                "unknown input format '{other}' (known: {})",
                FORMATS.join(", ")
            )))
        }
    };
    Ok(graph)
}

fn load_graph_opt(path: &str, options: &HashMap<String, String>) -> Result<CsrGraph, Error> {
    load_graph_as(path, options.get("format").map(|s| s.as_str()))
}

/// Writes one block id per line through a sizeable buffer with manual
/// itoa-style integer encoding, skipping the `fmt` machinery on the
/// per-node hot path of million-node partitions.
fn write_assignments(path: &str, assignments: &[u32]) -> Result<(), Error> {
    let io_err = |e: std::io::Error| Error::Internal(format!("cannot write {path}: {e}"));
    let file = std::fs::File::create(path).map_err(io_err)?;
    let mut w = std::io::BufWriter::with_capacity(1 << 20, file);
    let mut digits = [0u8; 11]; // u32::MAX has 10 digits, plus the newline
    for &block in assignments {
        w.write_all(encode_line(block, &mut digits))
            .map_err(io_err)?;
    }
    w.flush().map_err(io_err)
}

/// Encodes `value` as decimal digits followed by `\n`, filling `buf` from
/// the back, and returns the used slice.
fn encode_line(mut value: u32, buf: &mut [u8; 11]) -> &[u8] {
    buf[10] = b'\n';
    let mut start = 10;
    loop {
        start -= 1;
        buf[start] = b'0' + (value % 10) as u8;
        value /= 10;
        if value == 0 {
            break;
        }
    }
    &buf[start..]
}

fn parse_option<T: std::str::FromStr>(
    options: &HashMap<String, String>,
    key: &str,
    what: &str,
) -> Result<Option<T>, Error> {
    match options.get(key) {
        None => Ok(None),
        Some(raw) => raw
            .parse()
            .map(Some)
            .map_err(|_| Error::Usage(format!("--{key} must be {what}, got '{raw}'"))),
    }
}

/// Builds the job described by `--algo`/`--k`-style flags (or takes `--job`
/// verbatim), shared by `partition` and `map`.
fn job_from_options(
    options: &HashMap<String, String>,
    shape: oms_core::JobShape,
    default_algo: &str,
) -> Result<JobSpec, Error> {
    if let Some(spec) = options.get("job") {
        for conflicting in [
            "algo",
            "k",
            "epsilon",
            "threads",
            "shards",
            "passes",
            "converge",
            "seed",
            "buffer",
            "lambda",
            "hierarchy",
            "distances",
        ] {
            if options.contains_key(conflicting) {
                return Err(Error::Usage(format!(
                    "--job already encodes the whole job; drop --{conflicting}"
                )));
            }
        }
        return Ok(spec.parse()?);
    }
    let algo = options
        .get("algo")
        .map(|s| s.as_str())
        .unwrap_or(default_algo);
    let mut job = JobSpec::flat(algo, 0);
    job.shape = shape;
    if let Some(epsilon) = parse_option(options, "epsilon", "a number")? {
        job = job.epsilon(epsilon);
    }
    if let Some(threads) = parse_option(options, "threads", "a positive integer")? {
        job = job.threads(threads);
    }
    if let Some(shards) = parse_option(options, "shards", "a positive integer")? {
        job = job.shards(shards);
    }
    if let Some(passes) = parse_option(options, "passes", "a positive integer")? {
        job = job.passes(passes);
    }
    if let Some(converge) = parse_option(options, "converge", "a non-negative number")? {
        job = job.convergence(converge);
    }
    if let Some(seed) = parse_option(options, "seed", "an integer")? {
        job = job.seed(seed);
    }
    if let Some(buffer) = parse_option(options, "buffer", "a positive integer")? {
        job = job.buffer(buffer);
    }
    if let Some(lambda) = parse_option(options, "lambda", "a non-negative number")? {
        job = job.lambda(lambda);
    }
    Ok(job)
}

/// Prints the per-pass quality trajectory of a multi-pass run, one line per
/// accepted pass.
fn print_trajectory(trajectory: &[oms_core::PassStats]) {
    if trajectory.len() < 2 {
        return;
    }
    for stats in trajectory {
        println!(
            "  pass {:>2}  : cut {} (imbalance {:.4}, {} moved, {:.4} s)",
            stats.pass, stats.edge_cut, stats.imbalance, stats.moved, stats.seconds
        );
    }
}

fn partition_command(args: &[String]) -> Result<(), Error> {
    let (args, metrics) = take_flag(args, "--metrics");
    let (positional, options) = split_options(
        &args,
        &[
            "k", "job", "algo", "epsilon", "threads", "shards", "passes", "converge", "seed",
            "buffer", "lambda", "format", "output", "trace",
        ],
    )?;
    let Some(path) = positional.first() else {
        return Err(Error::Usage("partition: missing graph file".into()));
    };
    let shape = match parse_option::<u32>(&options, "k", "a positive integer")? {
        Some(k) => oms_core::JobShape::Flat(k),
        None if options.contains_key("job") => oms_core::JobShape::Flat(0), // replaced by --job
        None => return Err(Error::Usage("partition: --k (or --job) is required".into())),
    };
    let job = job_from_options(&options, shape, "oms")?;
    let obs = ObsSession::start(&options, metrics);
    if oms_edgepart::is_edge_algorithm(&job.algorithm) {
        // The e-* algorithms partition *edges* (vertex-cut objective);
        // they report the replication factor instead of the edge-cut.
        edge_partition_command(path, &options, &job)?;
        return obs.finish();
    }
    let partitioner = job.build()?;

    let graph = load_graph_opt(path, &options)?;
    let report = partitioner.run(&mut InMemoryStream::new(&graph))?;

    println!(
        "graph      : {path} (n = {}, m = {})",
        graph.num_nodes(),
        graph.num_edges()
    );
    println!("job        : {job}");
    println!(
        "algorithm  : {}, k = {}",
        report.algorithm,
        report.num_blocks()
    );
    println!("edge-cut   : {}", report.edge_cut);
    println!("imbalance  : {:.4}", report.imbalance);
    if !graph.is_unweighted() {
        println!(
            "weights    : c(V) = {}, ω(E) = {}, max block = {}",
            report.total_node_weight(),
            graph.total_edge_weight(),
            report.max_block_weight()
        );
    }
    println!("time       : {:.4} s", report.seconds);
    print_trajectory(&report.trajectory);
    if let Some(stats) = &report.shard_stats {
        println!(
            "shards     : {} ({} rounds, {} messages: {} load, {} assignment, log hash {:016x})",
            stats.shards,
            stats.rounds,
            stats.total_messages(),
            stats.load_messages,
            stats.assignment_messages,
            stats.log_hash
        );
        for (shard, (sent, received)) in stats
            .messages_sent
            .iter()
            .zip(&stats.messages_received)
            .enumerate()
        {
            println!("  shard {shard:>2} : {sent} sent, {received} received");
        }
        println!(
            "  send skew: {:.3} (max shard over mean; 1.000 = even)",
            oms_metrics::message_skew(&stats.messages_sent)
        );
    }
    if let Some(output) = options.get("output") {
        write_assignments(output, report.partition.assignments())?;
        println!("partition written to {output}");
    }
    obs.finish()
}

/// The vertex-cut pipeline behind `partition --algo e-*`: runs an edge
/// partitioner from the `oms-edgepart` registry, reports the replication
/// factor and (with `--output`) writes one `u v block` line per edge in
/// stream order.
fn edge_partition_command(
    path: &str,
    options: &HashMap<String, String>,
    job: &JobSpec,
) -> Result<(), Error> {
    let partitioner = oms_edgepart::build_edge_partitioner(job)?;
    let graph = load_graph_opt(path, options)?;
    let report = partitioner.run(&mut EdgesOf(InMemoryStream::new(&graph)))?;

    println!(
        "graph       : {path} (n = {}, m = {})",
        graph.num_nodes(),
        graph.num_edges()
    );
    println!("job         : {job}");
    println!(
        "algorithm   : {}, k = {} (vertex-cut)",
        report.algorithm,
        report.num_blocks()
    );
    println!(
        "replication : {:.4} (total replicas {}, max {})",
        report.replication_factor, report.total_replicas, report.max_replicas
    );
    println!("edge-balance: {:.4}", report.imbalance);
    if !graph.is_unweighted() {
        println!(
            "weights     : ω(E) = {}, max block load = {}",
            report.partition.total_load(),
            report.partition.max_block_load()
        );
    }
    println!("time        : {:.4} s", report.seconds);
    if report.trajectory.len() >= 2 {
        for stats in &report.trajectory {
            println!(
                "  pass {:>2}  : replication {:.4} (imbalance {:.4}, {} moved, {:.4} s)",
                stats.pass, stats.replication_factor, stats.imbalance, stats.moved, stats.seconds
            );
        }
    }
    if let Some(output) = options.get("output") {
        write_edge_assignments(output, &graph, report.partition.assignments())?;
        println!("edge partition written to {output}");
    }
    Ok(())
}

/// Writes one `u v block` line per edge, in the edge-stream order the
/// assignment was produced in.
fn write_edge_assignments(path: &str, graph: &CsrGraph, assignments: &[u32]) -> Result<(), Error> {
    let io_err = |e: std::io::Error| Error::Internal(format!("cannot write {path}: {e}"));
    let file = std::fs::File::create(path).map_err(io_err)?;
    let mut w = std::io::BufWriter::with_capacity(1 << 20, file);
    for (i, (u, v, _)) in graph.edges().enumerate() {
        writeln!(w, "{u} {v} {}", assignments[i]).map_err(io_err)?;
    }
    w.flush().map_err(io_err)
}

fn map_command(args: &[String]) -> Result<(), Error> {
    let (positional, options) = split_options(
        args,
        &[
            "hierarchy",
            "distances",
            "job",
            "algo",
            "epsilon",
            "threads",
            "passes",
            "converge",
            "seed",
            "format",
            "output",
        ],
    )?;
    let Some(path) = positional.first() else {
        return Err(Error::Usage("map: missing graph file".into()));
    };
    let job = if options.contains_key("job") {
        job_from_options(&options, oms_core::JobShape::Flat(0), "oms")?
    } else {
        let hierarchy = options
            .get("hierarchy")
            .ok_or_else(|| Error::Usage("map: --hierarchy is required (e.g. 4:16:8)".into()))?;
        let hierarchy = oms_core::HierarchySpec::parse(hierarchy)?;
        let distances = options
            .get("distances")
            .map(|s| s.as_str())
            .unwrap_or("1:10:100");
        let distances = oms_core::DistanceSpec::parse(distances)?;
        job_from_options(&options, oms_core::JobShape::Hierarchy(hierarchy), "oms")?
            .distances(distances)
    };
    if job.distances.is_none() {
        return Err(Error::Usage(
            "map: the job needs PE distances (--distances or dist= in --job)".into(),
        ));
    }
    let partitioner = job.build()?;

    let graph = load_graph_opt(path, &options)?;
    let report = partitioner.run(&mut InMemoryStream::new(&graph))?;

    let hierarchy = job.shape.hierarchy().expect("map jobs are hierarchical");
    println!(
        "graph        : {path} (n = {}, m = {})",
        graph.num_nodes(),
        graph.num_edges()
    );
    let distances = job.distances.as_ref().expect("checked above");
    println!(
        "topology     : S = {}, D = {}",
        hierarchy.to_string_spec(),
        distances
            .distances()
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(":")
    );
    println!("job          : {job}");
    println!(
        "algorithm    : {}, k = {} PEs",
        report.algorithm,
        report.num_blocks()
    );
    println!(
        "mapping cost : {}",
        report.mapping_cost.expect("distances were attached")
    );
    println!("edge-cut     : {}", report.edge_cut);
    println!("imbalance    : {:.4}", report.imbalance);
    println!("time         : {:.4} s", report.seconds);
    print_trajectory(&report.trajectory);
    if let Some(output) = options.get("output") {
        write_assignments(output, report.partition.assignments())?;
        println!("mapping written to {output}");
    }
    Ok(())
}

fn algorithms_command(args: &[String]) -> Result<(), Error> {
    let (positional, _) = split_options(args, &[])?;
    if !positional.is_empty() {
        return Err(Error::Usage("algorithms: takes no arguments".into()));
    }
    println!("registered algorithms (use with --algo or in a --job spec):\n");
    for algo in registered_algorithms() {
        let aliases = if algo.aliases.is_empty() {
            String::new()
        } else {
            format!(" (aliases: {})", algo.aliases.join(", "))
        };
        let repair = if algo.supports_repair {
            " [repairable]"
        } else {
            ""
        };
        let shardable = if algo.supports_sharding {
            " [shardable]"
        } else {
            ""
        };
        println!(
            "  {:<12} {}{}{}{}",
            algo.name, algo.description, aliases, repair, shardable
        );
    }
    println!(
        "\n[repairable] algorithms support incremental repair under `oms apply-deltas` \
         (drift=/repair= job options)."
    );
    println!(
        "[shardable] algorithms run under the deterministic sharded engine \
         (shards=S job option; per-shard message counts in the report)."
    );
    println!("\nedge (vertex-cut) algorithms — partition edges, report the replication factor:\n");
    for algo in oms_edgepart::registered_edge_algorithms() {
        let aliases = if algo.aliases.is_empty() {
            String::new()
        } else {
            format!(" (aliases: {})", algo.aliases.join(", "))
        };
        println!("  {:<12} {}{}", algo.name, algo.description, aliases);
    }
    println!("\njob spec grammar: <algo>:<k | a1:a2:...>[@eps=..,seed=..,threads=..,shards=..,passes=..,conv=..,base=..,hybrid=..,buf=..,lambda=..,drift=..,repair=off|local|boundary,window=..,dist=d1:d2:...]");
    Ok(())
}

fn convert_command(args: &[String]) -> Result<(), Error> {
    let (positional, options) = split_options(args, &["format", "stream-version"])?;
    let (Some(input), Some(output)) = (positional.first(), positional.get(1)) else {
        return Err(Error::Usage("convert: need <input> and <output>".into()));
    };
    let stream_version = match options.get("stream-version") {
        None => None,
        Some(raw) => Some(
            oms_graph::io::StreamFormatVersion::from_cli(raw).ok_or_else(|| {
                Error::Usage(format!("--stream-version must be 1, 2 or 3, got '{raw}'"))
            })?,
        ),
    };
    if stream_version.is_some() && sniff_format(Path::new(output)) != "stream" {
        return Err(Error::Usage(
            "convert: --stream-version only applies to .oms outputs".into(),
        ));
    }
    let graph = load_graph_opt(input, &options)?;
    // The output format follows the same extension table as input
    // sniffing, so `convert a.metis b.edges && info b.edges` round-trips.
    match sniff_format(Path::new(output)) {
        "metis" => write_metis(&graph, output)?,
        "edgelist" => {
            // The edge-list format has no weight columns; refusing beats
            // silently stripping the weights.
            if !graph.is_unweighted() {
                return Err(Error::Usage(format!(
                    "convert: the edge-list format drops node/edge weights; \
                     write {output} as .metis or .oms instead"
                )));
            }
            write_edge_list(&graph, output)?
        }
        _ => {
            match stream_version {
                None => write_stream_file(&graph, output)?,
                Some(version) => {
                    let options = oms_graph::io::StreamWriteOptions {
                        version,
                        ..Default::default()
                    };
                    oms_graph::io::write_stream_file_with(&graph, output, options)?;
                }
            }
            // Round-trip validation: a stream file that does not decode
            // back to the exact source graph must never leave `convert`.
            let back = oms_graph::io::read_stream_file(output)?;
            if back != graph {
                return Err(Error::Internal(format!(
                    "convert: round-trip validation failed — {output} does not decode \
                     back to the source graph (this is a bug, the file was kept for \
                     inspection)"
                )));
            }
        }
    }
    println!(
        "wrote {output} (n = {}, m = {}, c(V) = {})",
        graph.num_nodes(),
        graph.num_edges(),
        graph.total_node_weight()
    );
    Ok(())
}

fn generate_command(args: &[String]) -> Result<(), Error> {
    let (positional, options) = split_options(args, &["seed", "weights"])?;
    let (Some(family), Some(n), Some(output)) =
        (positional.first(), positional.get(1), positional.get(2))
    else {
        return Err(Error::Usage("generate: need <family> <n> <output>".into()));
    };
    let n: usize = n
        .parse()
        .map_err(|_| Error::Usage("generate: <n> must be an integer".into()))?;
    let seed: u64 = parse_option(&options, "seed", "an integer")?.unwrap_or(42);
    let scheme = match options.get("weights") {
        None => oms_gen::WeightScheme::Unit,
        Some(raw) => oms_gen::WeightScheme::parse(raw).ok_or_else(|| {
            Error::Usage(format!(
                "--weights must be unit, nodes, edges or full, got '{raw}'"
            ))
        })?,
    };
    let graph = match family.as_str() {
        "rgg" => oms_gen::random_geometric_graph(n, seed),
        "delaunay" => oms_gen::delaunay_graph(n, seed),
        "ba" => oms_gen::barabasi_albert(n.max(5), 4, seed),
        "rmat" => {
            let scale = (n as f64).log2().ceil() as u32;
            oms_gen::rmat_graph(scale, n * 8, oms_gen::RmatParams::GRAPH500, seed)
        }
        "grid" => {
            let side = (n as f64).sqrt().ceil() as usize;
            oms_gen::grid_2d(side, side)
        }
        "er" => oms_gen::erdos_renyi_gnm(n, n * 4, seed),
        other => return Err(Error::Usage(format!("unknown graph family '{other}'"))),
    };
    let graph = scheme.apply(&graph, seed);
    write_metis(&graph, output)?;
    println!(
        "wrote {output} ({family}, weights = {}, n = {}, m = {}, c(V) = {})",
        scheme.name(),
        graph.num_nodes(),
        graph.num_edges(),
        graph.total_node_weight()
    );
    Ok(())
}

/// Generates a seeded churn or temporal trace (`gen-deltas`) in the textual
/// delta grammar (`+e u v [w]`, `-e u v`, `+n v [w]`, `-n v`, `!`
/// checkpoints) so the result feeds straight into `apply-deltas` or the
/// library's `read_delta_trace`. `--temporal pa|drift|burst` switches from
/// churn noise to timestamped temporal streams (one batch per timestamp
/// window).
fn gen_deltas_command(args: &[String]) -> Result<(), Error> {
    let (positional, options) = split_options(
        args,
        &[
            "scheme",
            "temporal",
            "batches",
            "ops",
            "node-churn",
            "insert-frac",
            "delete-frac",
            "seed",
            "format",
        ],
    )?;
    let (Some(path), Some(output)) = (positional.first(), positional.get(1)) else {
        return Err(Error::Usage(
            "gen-deltas: need <graph> and <out.deltas>".into(),
        ));
    };
    let graph = load_graph_opt(path, &options)?;
    if let Some(shape) = options.get("temporal") {
        if options.contains_key("scheme") {
            return Err(Error::Usage(
                "--temporal replaces --scheme; drop one of them".into(),
            ));
        }
        let mut config = oms_gen::TemporalConfig {
            seed: parse_option(&options, "seed", "an integer")?.unwrap_or(42),
            ..oms_gen::TemporalConfig::default()
        };
        config.scheme = match shape.as_str() {
            "pa" => oms_gen::TemporalScheme::PreferentialAttachment { edges_per_node: 3 },
            "drift" => oms_gen::TemporalScheme::CommunityDrift { communities: 8 },
            "burst" => oms_gen::TemporalScheme::BurstArrivals { period: 4 },
            other => {
                return Err(Error::Usage(format!(
                    "--temporal must be pa, drift or burst, got '{other}'"
                )))
            }
        };
        if let Some(batches) = parse_option(&options, "batches", "a positive integer")? {
            config.batches = batches;
        }
        if let Some(ops) = parse_option(&options, "ops", "a positive integer")? {
            config.ops_per_batch = ops;
        }
        if let Some(frac) = parse_option(&options, "delete-frac", "a fraction in [0, 1]")? {
            config.delete_fraction = frac;
        }
        let trace = oms_gen::temporal_trace(&graph, &config);
        oms_graph::write_delta_trace(output, &trace)?;
        println!(
            "wrote {output} ({} batches, {} deltas, temporal = {:?}, seed = {})",
            trace.len(),
            trace.iter().map(oms_graph::DeltaBatch::len).sum::<usize>(),
            config.scheme,
            config.seed
        );
        return Ok(());
    }
    if options.contains_key("delete-frac") {
        return Err(Error::Usage(
            "--delete-frac only applies to --temporal traces".into(),
        ));
    }
    let mut config = oms_gen::ChurnConfig {
        seed: parse_option(&options, "seed", "an integer")?.unwrap_or(42),
        ..oms_gen::ChurnConfig::default()
    };
    if let Some(batches) = parse_option(&options, "batches", "a positive integer")? {
        config.batches = batches;
    }
    if let Some(ops) = parse_option(&options, "ops", "a positive integer")? {
        config.ops_per_batch = ops;
    }
    if let Some(frac) = parse_option(&options, "node-churn", "a fraction in [0, 1]")? {
        config.node_churn_fraction = frac;
    }
    if let Some(frac) = parse_option(&options, "insert-frac", "a fraction in [0, 1]")? {
        config.insert_fraction = frac;
    }
    config.scheme = match options
        .get("scheme")
        .map(|s| s.as_str())
        .unwrap_or("uniform")
    {
        "uniform" => oms_gen::ChurnScheme::Uniform,
        "drift" => oms_gen::ChurnScheme::CommunityDrift { communities: 8 },
        "burst" => oms_gen::ChurnScheme::Burst { window: 0.05 },
        other => {
            return Err(Error::Usage(format!(
                "--scheme must be uniform, drift or burst, got '{other}'"
            )))
        }
    };
    let trace = oms_gen::churn_trace(&graph, &config);
    oms_graph::write_delta_trace(output, &trace)?;
    println!(
        "wrote {output} ({} batches, {} deltas, scheme = {:?}, seed = {})",
        trace.len(),
        trace.iter().map(oms_graph::DeltaBatch::len).sum::<usize>(),
        config.scheme,
        config.seed
    );
    Ok(())
}

/// The dynamic-maintenance pipeline behind `apply-deltas`: builds a
/// long-lived [`oms_dynamic::PartitionState`] over the graph, applies the
/// trace batch by batch and prints one checkpoint row per `--window` batches
/// (default 1; the final batch always checkpoints) comparing the
/// incrementally maintained partition against a cold restream of the same
/// graph state (unless `--reference off`).
fn apply_deltas_command(args: &[String]) -> Result<(), Error> {
    let (args, metrics) = take_flag(args, "--metrics");
    let (positional, options) = split_options(
        &args,
        &[
            "k",
            "job",
            "algo",
            "epsilon",
            "threads",
            "passes",
            "converge",
            "seed",
            "drift",
            "repair",
            "window",
            "reference",
            "format",
            "output",
            "trace",
        ],
    )?;
    let (Some(path), Some(trace_path)) = (positional.first(), positional.get(1)) else {
        return Err(Error::Usage(
            "apply-deltas: need <graph> and <trace.deltas>".into(),
        ));
    };
    let shape = match parse_option::<u32>(&options, "k", "a positive integer")? {
        Some(k) => oms_core::JobShape::Flat(k),
        None if options.contains_key("job") => oms_core::JobShape::Flat(0), // replaced by --job
        None => {
            return Err(Error::Usage(
                "apply-deltas: --k (or --job) is required".into(),
            ))
        }
    };
    let mut job = job_from_options(&options, shape, "fennel")?;
    if let Some(drift) = parse_option(&options, "drift", "a positive number")? {
        job = job.drift(drift);
    }
    if let Some(repair) = options.get("repair") {
        job = job.repair(oms_core::RepairPolicy::parse(repair)?);
    }
    if let Some(window) = parse_option(&options, "window", "a positive integer")? {
        job = job.window(window);
    }
    let reference = match options.get("reference").map(|s| s.as_str()).unwrap_or("on") {
        "on" => true,
        "off" => false,
        other => {
            return Err(Error::Usage(format!(
                "--reference must be on or off, got '{other}'"
            )))
        }
    };
    let graph = load_graph_opt(path, &options)?;
    let trace = oms_graph::read_delta_trace(trace_path)?;
    let obs = ObsSession::start(&options, metrics);
    let mut state = oms_dynamic::PartitionState::new(&job, &mut InMemoryStream::new(&graph))?;
    println!(
        "graph      : {path} (n = {}, m = {})",
        graph.num_nodes(),
        graph.num_edges()
    );
    println!(
        "trace      : {trace_path} ({} batches, {} deltas)",
        trace.len(),
        trace.iter().map(oms_graph::DeltaBatch::len).sum::<usize>()
    );
    println!("job        : {job}");
    println!(
        "initial    : cut {} (imbalance {:.4})",
        state.edge_cut(),
        state.imbalance()
    );
    let cadence = oms_dynamic::Checkpoints::every(job.window);
    let mut checkpoints = Vec::with_capacity(cadence.count(trace.len()));
    let mut window_deltas = 0usize;
    let mut window_seconds = 0.0f64;
    for (i, batch) in trace.iter().enumerate() {
        let stats = state.apply(batch)?;
        window_deltas += stats.deltas;
        window_seconds += stats.seconds;
        if !cadence.is_checkpoint(i, trace.len()) {
            continue;
        }
        let (restream_cut, restream_imbalance, restream_seconds) = if reference {
            state.cold_restream_reference()?
        } else {
            (state.edge_cut(), state.imbalance(), 0.0)
        };
        checkpoints.push(oms_metrics::CheckpointComparison {
            checkpoint: checkpoints.len(),
            deltas: window_deltas,
            incremental_cut: state.edge_cut(),
            incremental_imbalance: state.imbalance(),
            incremental_seconds: window_seconds,
            restream_cut,
            restream_imbalance,
            restream_seconds,
        });
        window_deltas = 0;
        window_seconds = 0.0;
    }
    println!();
    print!(
        "{}",
        oms_metrics::checkpoint_table("incremental vs cold restream", &checkpoints).to_text()
    );
    if reference {
        println!(
            "\nmax cut ratio  : {:.3}",
            oms_metrics::max_cut_ratio(&checkpoints)
        );
        println!(
            "repair speedup : {:.1}x",
            oms_metrics::repair_vs_restream_speedup(&checkpoints)
        );
    }
    let counters = state.counters();
    println!(
        "drift          : {:.4} (threshold {}, {} full restreams, {} deltas applied)",
        state.drift(),
        job.drift,
        counters.restreams,
        counters.deltas_applied
    );
    if let Some(output) = options.get("output") {
        write_assignments(output, state.assignments())?;
        println!("partition written to {output}");
    }
    obs.finish()
}

/// The traffic-replay pipeline behind `replay`: partitions the graph with
/// the requested job, then fires a seeded stream of Zipf-skewed random-walk
/// requests at the result and reports what simulated users would see —
/// cross-block hop rate, queue-load skew and p50/p99 latency. Both
/// node-partition algorithms and the vertex-cut `e-*` family are supported;
/// the latter serves each hop at the block owning the traversed edge.
fn replay_command(args: &[String]) -> Result<(), Error> {
    let (args, metrics) = take_flag(args, "--metrics");
    let (positional, options) = split_options(
        &args,
        &[
            "k",
            "job",
            "algo",
            "epsilon",
            "threads",
            "shards",
            "passes",
            "converge",
            "seed",
            "buffer",
            "lambda",
            "requests",
            "hops",
            "zipf",
            "penalty",
            "arrival",
            "max-backlog",
            "replay-seed",
            "format",
            "trace",
        ],
    )?;
    let Some(path) = positional.first() else {
        return Err(Error::Usage("replay: missing graph file".into()));
    };
    let shape = match parse_option::<u32>(&options, "k", "a positive integer")? {
        Some(k) => oms_core::JobShape::Flat(k),
        None if options.contains_key("job") => oms_core::JobShape::Flat(0), // replaced by --job
        None => return Err(Error::Usage("replay: --k (or --job) is required".into())),
    };
    let job = job_from_options(&options, shape, "fennel")?;

    let mut config = oms_workload::ReplayConfig {
        seed: parse_option(&options, "replay-seed", "an integer")?.unwrap_or(0),
        ..oms_workload::ReplayConfig::default()
    };
    if let Some(requests) = parse_option(&options, "requests", "a positive integer")? {
        config.requests = requests;
    }
    if let Some(hops) = parse_option(&options, "hops", "a non-negative integer")? {
        config.hops = hops;
    }
    if let Some(zipf) = parse_option(&options, "zipf", "a non-negative number")? {
        config.zipf_exponent = zipf;
    }
    if let Some(penalty) = parse_option(&options, "penalty", "a non-negative integer")? {
        config.hop_penalty = penalty;
    }
    if let Some(arrival) = parse_option(&options, "arrival", "a non-negative integer")? {
        config.arrival_every = arrival;
    }
    if let Some(backlog) = parse_option(&options, "max-backlog", "a non-negative integer")? {
        config.max_backlog = backlog;
    }

    let graph = load_graph_opt(path, &options)?;
    println!(
        "graph      : {path} (n = {}, m = {})",
        graph.num_nodes(),
        graph.num_edges()
    );
    println!("job        : {job}");
    println!(
        "workload   : {} requests x {} hops (zipf {:.2}, penalty {}, arrival {}, seed {})",
        config.requests,
        config.hops,
        config.zipf_exponent,
        config.hop_penalty,
        config.arrival_every,
        config.seed
    );

    let obs = ObsSession::start(&options, metrics);
    let report = if oms_edgepart::is_edge_algorithm(&job.algorithm) {
        let partitioner = oms_edgepart::build_edge_partitioner(&job)?;
        let part = partitioner.run(&mut EdgesOf(InMemoryStream::new(&graph)))?;
        println!(
            "partition  : {} (vertex-cut, replication {:.4})",
            part.algorithm, part.replication_factor
        );
        oms_workload::replay_edge_partition(
            &graph,
            part.partition.assignments(),
            part.num_blocks(),
            &config,
        )
    } else {
        let partitioner = job.build()?;
        let part = partitioner.run(&mut InMemoryStream::new(&graph))?;
        println!(
            "partition  : {} (cut {}, imbalance {:.4})",
            part.algorithm, part.edge_cut, part.imbalance
        );
        oms_workload::replay_graph(&graph, part.partition.assignments(), &config)
    };

    println!(
        "served     : {} of {} requests ({} rejected, {:.1}% shed)",
        report.served,
        report.requests,
        report.rejected,
        report.rejection_rate() * 100.0
    );
    println!(
        "hop rate   : {:.4} cross-block ({} of {} hops)",
        report.cross_block_hop_rate(),
        report.cross_block_hops,
        report.total_hops
    );
    println!(
        "load skew  : {:.3} (max block over mean; 1.000 = even)",
        report.load_skew()
    );
    println!("p50 latency: {} ticks", report.p50_latency);
    println!("p99 latency: {} ticks", report.p99_latency);
    println!(
        "mean       : {:.1} ticks (makespan {}, log hash {:016x})",
        report.mean_latency, report.makespan, report.request_log_hash
    );
    obs.finish()
}

/// The `oms trace` subcommand: parses a JSON-lines trace recorded with
/// `--trace`, prints the summary and verifies the event-log hash against
/// the `trace_end` footer. A hash mismatch is an internal error (exit 2):
/// the file does not describe the run it claims to.
fn trace_command(args: &[String]) -> Result<(), Error> {
    let (positional, _options) = split_options(args, &[])?;
    let Some(path) = positional.first() else {
        return Err(Error::Usage("trace: missing trace file".into()));
    };
    let text = std::fs::read_to_string(path)
        .map_err(|e| Error::Internal(format!("cannot read {path}: {e}")))?;
    let summary = oms_obs::summarize(&text).map_err(Error::Usage)?;
    println!("trace            {path}");
    print!("{summary}");
    if summary.hash_verified() == Some(false) {
        return Err(Error::Internal(format!(
            "event-log hash mismatch: footer {:#018x}, recomputed {:#018x}",
            summary.footer.map(|f| f.log_hash).unwrap_or(0),
            summary.recomputed_hash
        )));
    }
    Ok(())
}

fn info_command(args: &[String]) -> Result<(), Error> {
    let (positional, options) = split_options(args, &["format"])?;
    let Some(path) = positional.first() else {
        return Err(Error::Usage("info: missing graph file".into()));
    };
    let graph = load_graph_opt(path, &options)?;
    println!("file         : {path}");
    println!("nodes        : {}", graph.num_nodes());
    println!("edges        : {}", graph.num_edges());
    println!("max degree   : {}", graph.max_degree());
    println!("avg degree   : {:.2}", graph.average_degree());
    // Degree skew: a p99/max ratio near 0 means a few hubs dominate — the
    // signal that vertex-cut (e-*) partitioning will beat edge-cut.
    let p99 = graph.degree_percentile(0.99);
    let skew = if graph.max_degree() == 0 {
        1.0
    } else {
        p99 as f64 / graph.max_degree() as f64
    };
    println!("p99 degree   : {p99}");
    println!("degree skew  : {skew:.4} (p99/max; small = hub-dominated, favors vertex-cut)");
    println!("total weight : {}", graph.total_node_weight());
    println!("edge weight  : {}", graph.total_edge_weight());
    println!("unweighted   : {}", graph.is_unweighted());
    println!(
        "connected    : {}",
        oms_graph::traversal::is_connected(&graph)
    );
    // For stream files, break the on-disk layout down by section so the
    // effect of `convert --stream-version` is visible at a glance.
    let is_stream = match options.get("format").map(|s| s.as_str()).unwrap_or("auto") {
        "auto" => sniff_format(Path::new(path.as_str())) == "stream",
        explicit => explicit == "stream",
    };
    if is_stream {
        let info = oms_graph::io::stream_file_info(path)?;
        println!("stream format: v{}", info.version.number());
        println!("  header       : {:>12} B", info.header_bytes);
        println!("  degrees      : {:>12} B", info.degree_bytes);
        println!(
            "  node weights : {:>12} B{}",
            info.node_weight_bytes,
            if info.has_node_weights {
                ""
            } else {
                " (unit, omitted)"
            }
        );
        println!("  neighbors    : {:>12} B", info.neighbor_bytes);
        println!(
            "  edge weights : {:>12} B{}",
            info.edge_weight_bytes,
            if info.has_edge_weights {
                ""
            } else {
                " (unit, omitted)"
            }
        );
        println!("  padding      : {:>12} B", info.padding_bytes);
        println!("  trailer      : {:>12} B", info.trailer_bytes);
        println!("  total        : {:>12} B", info.file_bytes);
    }
    Ok(())
}
