//! Graph contraction: collapse each cluster into a single coarse node.

use oms_graph::{CsrGraph, GraphBuilder, NodeId};
use std::collections::HashMap;

/// Compacts arbitrary cluster labels into consecutive ids `0..num_clusters`.
///
/// Returns `(compact_label_per_node, num_clusters)`; the compact ids are
/// assigned in order of first appearance.
pub fn relabel(cluster: &[NodeId]) -> (Vec<NodeId>, usize) {
    let mut mapping: HashMap<NodeId, NodeId> = HashMap::new();
    let mut compact = Vec::with_capacity(cluster.len());
    for &c in cluster {
        let next = mapping.len() as NodeId;
        let id = *mapping.entry(c).or_insert(next);
        compact.push(id);
    }
    (compact, mapping.len())
}

/// Contracts `graph` according to the (already compacted) cluster labels.
///
/// The coarse node `c` has weight equal to the sum of its members' weights;
/// the coarse edge `{c, d}` has weight equal to the total weight of fine
/// edges between the two clusters. Intra-cluster edges disappear.
///
/// Returns the coarse graph; `cluster[v]` is the coarse node of fine node
/// `v`, which is all the information needed to project a coarse partition
/// back onto the fine graph.
pub fn contract(graph: &CsrGraph, cluster: &[NodeId], num_clusters: usize) -> CsrGraph {
    assert_eq!(cluster.len(), graph.num_nodes());
    let mut builder = GraphBuilder::with_capacity(num_clusters, graph.num_edges());
    // Coarse node weights.
    let mut weights = vec![0u64; num_clusters];
    for v in graph.nodes() {
        weights[cluster[v as usize] as usize] += graph.node_weight(v);
    }
    for (c, &w) in weights.iter().enumerate() {
        builder.set_node_weight(c as NodeId, w.max(1)).unwrap();
    }
    // Coarse edges (GraphBuilder sums duplicate edges).
    for (u, v, w) in graph.edges() {
        let cu = cluster[u as usize];
        let cv = cluster[v as usize];
        if cu != cv {
            builder.add_weighted_edge(cu, cv, w).unwrap();
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relabel_compacts_labels() {
        let (compact, count) = relabel(&[7, 7, 3, 9, 3]);
        assert_eq!(count, 3);
        assert_eq!(compact, vec![0, 0, 1, 2, 1]);
    }

    #[test]
    fn contraction_sums_node_and_edge_weights() {
        // Path 0-1-2-3 with clusters {0,1} and {2,3}.
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let coarse = contract(&g, &[0, 0, 1, 1], 2);
        assert_eq!(coarse.num_nodes(), 2);
        assert_eq!(coarse.num_edges(), 1);
        assert_eq!(coarse.node_weight(0), 2);
        assert_eq!(coarse.node_weight(1), 2);
        assert_eq!(coarse.edge_weight(0, 1), Some(1));
    }

    #[test]
    fn parallel_fine_edges_accumulate_in_coarse_edge() {
        // Two clusters joined by three fine edges of weight 1.
        let g = CsrGraph::from_edges(6, &[(0, 3), (1, 4), (2, 5), (0, 1), (3, 4)]).unwrap();
        let coarse = contract(&g, &[0, 0, 0, 1, 1, 1], 2);
        assert_eq!(coarse.edge_weight(0, 1), Some(3));
        assert_eq!(coarse.num_edges(), 1);
    }

    #[test]
    fn total_weights_are_preserved() {
        let g = oms_gen::planted_partition(200, 5, 0.1, 0.01, 3);
        let cluster: Vec<NodeId> = (0..200).map(|v| v % 17).collect();
        let (compact, count) = relabel(&cluster);
        let coarse = contract(&g, &compact, count);
        assert_eq!(coarse.total_node_weight(), g.total_node_weight());
        // The coarse cut weight equals the fine weight of inter-cluster edges.
        let fine_cross: u64 = g
            .edges()
            .filter(|&(u, v, _)| compact[u as usize] != compact[v as usize])
            .map(|(_, _, w)| w)
            .sum();
        assert_eq!(coarse.total_edge_weight(), fine_cross);
    }

    #[test]
    fn empty_cluster_ids_are_not_required_to_be_dense_after_relabel() {
        let (compact, count) = relabel(&[5]);
        assert_eq!(count, 1);
        assert_eq!(compact, vec![0]);
    }
}
