//! Initial partitioning of the coarsest graph.
//!
//! Once coarsening has shrunk the graph to a few thousand (weighted) nodes,
//! the initial `k`-way partition is computed by a greedy streaming pass
//! (Fennel objective, which is balance-aware on weighted nodes) followed by
//! a couple of refinement rounds. This mirrors the "initial partitioning via
//! simple greedy + refinement" design of fast multilevel partitioners.

use crate::refine::{refine, RefineConfig};
use oms_core::{BlockId, Fennel, OnePassConfig, StreamingPartitioner};
use oms_graph::CsrGraph;

/// Computes an initial `k`-way assignment of (the coarsest) `graph`.
pub fn initial_partition(graph: &CsrGraph, k: u32, epsilon: f64, seed: u64) -> Vec<BlockId> {
    let cfg = OnePassConfig::default().epsilon(epsilon).seed(seed);
    let partition = Fennel::new(k, cfg)
        .partition_graph(graph)
        .expect("k > 0 is validated by the caller");
    let mut assignment = partition.assignments().to_vec();
    refine(
        graph,
        &mut assignment,
        k,
        &RefineConfig {
            epsilon,
            rounds: 5,
            threads: 1,
        },
    );
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;
    use oms_core::Partition;

    #[test]
    fn initial_partition_covers_all_blocks_and_stays_balanced() {
        let g = oms_gen::planted_partition(300, 8, 0.15, 0.01, 3);
        let assignment = initial_partition(&g, 8, 0.03, 1);
        let p = Partition::from_assignments(8, assignment, &vec![1; 300]);
        assert_eq!(p.used_blocks(), 8);
        assert!(p.is_balanced(0.03 + 1e-9), "imbalance {}", p.imbalance());
    }

    #[test]
    fn initial_partition_on_weighted_coarse_graph() {
        // Simulate a coarse graph with heterogeneous node weights.
        let mut b = oms_graph::GraphBuilder::new(6);
        for v in 0..6u32 {
            b.set_node_weight(v, (v as u64 % 3) * 4 + 1).unwrap();
        }
        for &(u, v) in &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 3)] {
            b.add_weighted_edge(u, v, 2).unwrap();
        }
        let g = b.build();
        let assignment = initial_partition(&g, 2, 0.1, 3);
        let p = Partition::from_assignments(2, assignment, g.node_weights());
        assert_eq!(p.num_nodes(), 6);
        // Balance is checked against the weighted capacity.
        assert!(p.max_block_weight() <= Partition::capacity(g.total_node_weight(), 2, 0.1) + 5);
    }

    #[test]
    fn initial_partition_quality_beats_round_robin() {
        let g = oms_gen::planted_partition(400, 4, 0.2, 0.005, 7);
        let assignment = initial_partition(&g, 4, 0.03, 5);
        let p = Partition::from_assignments(4, assignment, &vec![1; 400]);
        let round_robin: Vec<BlockId> = (0..400).map(|v| (v % 4) as BlockId).collect();
        let rr = Partition::from_assignments(4, round_robin, &vec![1; 400]);
        assert!(p.edge_cut(&g) < rr.edge_cut(&g));
    }
}
