//! The multilevel V-cycle: coarsen → initial partition → uncoarsen + refine.

use crate::clustering::{label_propagation, ClusteringConfig};
use crate::contract::{contract, relabel};
use crate::initial::initial_partition;
use crate::refine::{refine, RefineConfig};
use oms_core::{BlockId, Partition, PartitionError, Result};
use oms_graph::{CsrGraph, NodeId};

/// Configuration of the multilevel partitioner.
#[derive(Clone, Copy, Debug)]
pub struct MultilevelConfig {
    /// Allowed imbalance ε.
    pub epsilon: f64,
    /// Number of label propagation rounds per coarsening level.
    pub lp_rounds: usize,
    /// Number of refinement rounds per uncoarsening level.
    pub refine_rounds: usize,
    /// Coarsening stops once the graph has at most `coarse_factor · k` nodes.
    pub coarse_factor: usize,
    /// Number of threads used by the refinement.
    pub threads: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MultilevelConfig {
    fn default() -> Self {
        MultilevelConfig {
            epsilon: 0.03,
            lp_rounds: 3,
            refine_rounds: 3,
            coarse_factor: 40,
            threads: 1,
            seed: 0,
        }
    }
}

/// The in-memory multilevel `k`-way partitioner (KaMinPar stand-in).
#[derive(Clone, Copy, Debug)]
pub struct MultilevelPartitioner {
    k: u32,
    config: MultilevelConfig,
}

impl MultilevelPartitioner {
    /// Creates a partitioner for `k` blocks.
    pub fn new(k: u32, config: MultilevelConfig) -> Self {
        MultilevelPartitioner { k, config }
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> u32 {
        self.k
    }

    /// Partitions `graph` into `k` blocks.
    pub fn partition(&self, graph: &CsrGraph) -> Result<Partition> {
        if self.k == 0 {
            return Err(PartitionError::InvalidConfig(
                "the number of blocks k must be positive".into(),
            ));
        }
        let k = self.k;
        let cfg = &self.config;
        if graph.num_nodes() == 0 {
            return Ok(Partition::from_assignments(k, Vec::new(), &[]));
        }

        // ---- Coarsening ------------------------------------------------
        // Keep contracting until the graph is small relative to k or label
        // propagation stops making progress.
        let coarse_limit = (cfg.coarse_factor * k as usize).max(512);
        let max_cluster_weight = (graph.total_node_weight() as f64 * (1.0 + cfg.epsilon)
            / (k as f64 * 4.0))
            .ceil()
            .max(1.0) as u64;

        let mut levels: Vec<(CsrGraph, Vec<NodeId>)> = Vec::new();
        let mut current = graph.clone();
        while current.num_nodes() > coarse_limit {
            let clustering_cfg = ClusteringConfig {
                max_cluster_weight,
                rounds: cfg.lp_rounds,
                seed: cfg.seed.wrapping_add(levels.len() as u64),
            };
            let cluster = label_propagation(&current, &clustering_cfg);
            let (compact, num_clusters) = relabel(&cluster);
            // Stop if the graph barely shrinks (less than 10 %).
            if num_clusters as f64 > 0.9 * current.num_nodes() as f64 {
                break;
            }
            let coarse = contract(&current, &compact, num_clusters);
            levels.push((current, compact));
            current = coarse;
        }

        // ---- Initial partitioning --------------------------------------
        let mut assignment = initial_partition(&current, k, cfg.epsilon, cfg.seed);

        // ---- Uncoarsening + refinement ----------------------------------
        let refine_cfg = RefineConfig {
            epsilon: cfg.epsilon,
            rounds: cfg.refine_rounds,
            threads: cfg.threads,
        };
        refine(&current, &mut assignment, k, &refine_cfg);
        while let Some((fine, mapping)) = levels.pop() {
            let mut fine_assignment = vec![0 as BlockId; fine.num_nodes()];
            for v in 0..fine.num_nodes() {
                fine_assignment[v] = assignment[mapping[v] as usize];
            }
            refine(&fine, &mut fine_assignment, k, &refine_cfg);
            assignment = fine_assignment;
        }

        Ok(Partition::from_assignments(
            k,
            assignment,
            graph.node_weights(),
        ))
    }

    /// Convenience: partition with an explicit thread count (used by the
    /// scalability experiments).
    pub fn partition_with_threads(&self, graph: &CsrGraph, threads: usize) -> Result<Partition> {
        let mut clone = *self;
        clone.config.threads = threads;
        clone.partition(graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oms_core::{Fennel, OnePassConfig, StreamingPartitioner};

    #[test]
    fn multilevel_produces_valid_balanced_partition() {
        let g = oms_gen::planted_partition(600, 8, 0.1, 0.005, 3);
        let p = MultilevelPartitioner::new(8, MultilevelConfig::default())
            .partition(&g)
            .unwrap();
        assert_eq!(p.num_nodes(), 600);
        assert!(p.validate(&vec![1; 600]));
        assert!(p.is_balanced(0.03 + 1e-9), "imbalance {}", p.imbalance());
    }

    #[test]
    fn multilevel_beats_streaming_fennel_on_quality() {
        // The whole point of the in-memory baseline: much better cuts than
        // one-pass streaming (Fig. 2b shows KaMinPar far ahead of Fennel).
        let g = oms_gen::planted_partition(800, 16, 0.08, 0.004, 7);
        let ml = MultilevelPartitioner::new(16, MultilevelConfig::default())
            .partition(&g)
            .unwrap();
        let fennel = Fennel::new(16, OnePassConfig::default())
            .partition_graph(&g)
            .unwrap();
        assert!(
            ml.edge_cut(&g) < fennel.edge_cut(&g),
            "multilevel {} vs fennel {}",
            ml.edge_cut(&g),
            fennel.edge_cut(&g)
        );
    }

    #[test]
    fn multilevel_works_when_graph_is_already_small() {
        let g = oms_gen::erdos_renyi_gnm(100, 300, 5);
        let p = MultilevelPartitioner::new(4, MultilevelConfig::default())
            .partition(&g)
            .unwrap();
        assert_eq!(p.num_nodes(), 100);
        assert!(p.is_balanced(0.04));
    }

    #[test]
    fn multilevel_with_threads_produces_valid_partition() {
        let g = oms_gen::planted_partition(500, 8, 0.1, 0.01, 11);
        let p = MultilevelPartitioner::new(8, MultilevelConfig::default())
            .partition_with_threads(&g, 4)
            .unwrap();
        assert!(p.is_balanced(0.031));
    }

    #[test]
    fn multilevel_on_mesh_graphs() {
        let g = oms_gen::grid_2d(40, 40);
        let p = MultilevelPartitioner::new(4, MultilevelConfig::default())
            .partition(&g)
            .unwrap();
        assert!(p.is_balanced(0.031));
        // A 40×40 grid split into 4 balanced parts needs to cut roughly 2×40
        // edges; accept anything clearly below a random assignment.
        assert!(p.edge_cut(&g) < 400, "cut {}", p.edge_cut(&g));
    }

    #[test]
    fn zero_blocks_is_rejected_and_empty_graph_is_fine() {
        let g = CsrGraph::empty(0);
        assert!(MultilevelPartitioner::new(0, MultilevelConfig::default())
            .partition(&g)
            .is_err());
        let p = MultilevelPartitioner::new(4, MultilevelConfig::default())
            .partition(&g)
            .unwrap();
        assert_eq!(p.num_nodes(), 0);
    }
}
