//! Offline recursive multi-section (the IntMap stand-in).
//!
//! The offline counterpart of OMS (§3 of the paper, following Schulz & Träff
//! and Kirchbach et al.): first partition the whole graph into `aℓ` blocks
//! with a high-quality in-memory partitioner, then recursively partition the
//! subgraph induced by each block into `a_{ℓ−1}` sub-blocks, and so on. The
//! leaf numbering matches [`oms_core::HierarchySpec`], so the result is a
//! process mapping onto the hierarchical machine.

use crate::partitioner::{MultilevelConfig, MultilevelPartitioner};
use oms_core::{BlockId, HierarchySpec, Partition, Result};
use oms_graph::{CsrGraph, NodeId};

/// Offline recursive multi-section along a communication hierarchy.
#[derive(Clone, Debug)]
pub struct RecursiveMultisection {
    hierarchy: HierarchySpec,
    config: MultilevelConfig,
}

impl RecursiveMultisection {
    /// Creates an offline recursive multi-section mapper.
    pub fn new(hierarchy: HierarchySpec, config: MultilevelConfig) -> Self {
        RecursiveMultisection { hierarchy, config }
    }

    /// Total number of PEs.
    pub fn num_blocks(&self) -> u32 {
        self.hierarchy.total_blocks()
    }

    /// Computes the hierarchical partition / process mapping of `graph`.
    pub fn partition(&self, graph: &CsrGraph) -> Result<Partition> {
        let k = self.hierarchy.total_blocks();
        let n = graph.num_nodes();
        let mut assignment: Vec<BlockId> = vec![0; n];
        if n > 0 {
            let all_nodes: Vec<NodeId> = (0..n as NodeId).collect();
            let levels = self.hierarchy.num_levels();
            self.split(graph, &all_nodes, levels, 0, k, &mut assignment)?;
        }
        Ok(Partition::from_assignments(
            k,
            assignment,
            graph.node_weights(),
        ))
    }

    /// Recursively splits `nodes` (ids in the original graph) covering the PE
    /// range `[pe_lo, pe_lo + pe_span)` at hierarchy level `level`
    /// (`level = ℓ` at the top, 0 when a single PE remains).
    fn split(
        &self,
        graph: &CsrGraph,
        nodes: &[NodeId],
        level: usize,
        pe_lo: u32,
        pe_span: u32,
        assignment: &mut [BlockId],
    ) -> Result<()> {
        if level == 0 || pe_span == 1 {
            for &v in nodes {
                assignment[v as usize] = pe_lo;
            }
            return Ok(());
        }
        // The factor of the current (topmost remaining) level.
        let fan_out = self.hierarchy.factors()[level - 1];
        let sub_span = pe_span / fan_out;

        let (subgraph, mapping) = graph.induced_subgraph(nodes);
        let partition = MultilevelPartitioner::new(fan_out, self.config).partition(&subgraph)?;
        // Group the nodes by their block and recurse.
        let mut groups: Vec<Vec<NodeId>> = vec![Vec::new(); fan_out as usize];
        for (local, &original) in mapping.iter().enumerate() {
            groups[partition.block_of(local as NodeId) as usize].push(original);
        }
        for (i, group) in groups.into_iter().enumerate() {
            self.split(
                graph,
                &group,
                level - 1,
                pe_lo + i as u32 * sub_span,
                sub_span,
                assignment,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oms_core::DistanceSpec;

    fn mapping_cost(
        graph: &CsrGraph,
        assignment: &[BlockId],
        hierarchy: &HierarchySpec,
        distances: &DistanceSpec,
    ) -> u64 {
        graph
            .edges()
            .map(|(u, v, w)| {
                w * distances.distance(hierarchy, assignment[u as usize], assignment[v as usize])
            })
            .sum()
    }

    #[test]
    fn recursive_multisection_produces_valid_partition() {
        let g = oms_gen::planted_partition(400, 8, 0.12, 0.005, 3);
        let h = HierarchySpec::parse("2:2:2").unwrap();
        let rms = RecursiveMultisection::new(h, MultilevelConfig::default());
        let p = rms.partition(&g).unwrap();
        assert_eq!(p.num_blocks(), 8);
        assert_eq!(p.num_nodes(), 400);
        assert!(p.validate(&vec![1; 400]));
        // Recursive bisection compounds imbalance slightly; stay well below
        // 10 % on this easy instance.
        assert!(p.imbalance() < 0.12, "imbalance {}", p.imbalance());
    }

    #[test]
    fn offline_mapping_beats_streaming_oms_on_quality() {
        // The in-memory baseline exists to show what quality is attainable
        // with full graph access (paper: IntMap/KaMinPar ≫ streaming tools).
        use oms_core::{OmsConfig, OnlineMultiSection};
        let g = oms_gen::planted_partition(600, 16, 0.1, 0.004, 7);
        let h = HierarchySpec::parse("2:2:4").unwrap();
        let d = DistanceSpec::paper_default();
        let offline = RecursiveMultisection::new(h.clone(), MultilevelConfig::default())
            .partition(&g)
            .unwrap();
        let streaming = OnlineMultiSection::with_hierarchy(h.clone(), OmsConfig::default())
            .partition_graph(&g)
            .unwrap();
        let off_cost = mapping_cost(&g, offline.assignments(), &h, &d);
        let on_cost = mapping_cost(&g, streaming.assignments(), &h, &d);
        assert!(
            off_cost <= on_cost,
            "offline {off_cost} should not be worse than streaming {on_cost}"
        );
    }

    #[test]
    fn single_level_hierarchy_reduces_to_flat_partitioning() {
        let g = oms_gen::planted_partition(200, 4, 0.15, 0.01, 9);
        let h = HierarchySpec::parse("4").unwrap();
        let p = RecursiveMultisection::new(h, MultilevelConfig::default())
            .partition(&g)
            .unwrap();
        assert_eq!(p.num_blocks(), 4);
        assert!(p.used_blocks() == 4);
    }

    #[test]
    fn empty_graph_is_handled() {
        let g = CsrGraph::empty(0);
        let h = HierarchySpec::parse("2:2").unwrap();
        let p = RecursiveMultisection::new(h, MultilevelConfig::default())
            .partition(&g)
            .unwrap();
        assert_eq!(p.num_nodes(), 0);
    }
}
