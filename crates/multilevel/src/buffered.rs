//! Buffered streaming partitioning (HeiStream-style).
//!
//! The strict one-pass model assigns every node the moment it arrives; the
//! authors' follow-up direction — *buffered* streaming — relaxes this to
//! "assign every node by the end of its batch". That small delay buys a lot
//! of context: a whole batch can be loaded into memory, turned into a *model
//! graph* and solved with the multilevel machinery before any of its nodes
//! is committed.
//!
//! [`BufferedMultilevel`] implements the recipe on top of the batch
//! executor:
//!
//! 1. **Accumulate** a batch of `buffer` nodes from the stream (the batch
//!    layer in `oms-graph` prefetches the next batch from disk while this
//!    one is being solved).
//! 2. **Model**: build a [`CsrGraph`](oms_graph::CsrGraph) over the batch's
//!    nodes with all batch-internal edges and the streamed node weights.
//! 3. **Partition** the model into `min(k, |batch|)` blocks with the
//!    in-memory multilevel partitioner (coarsen → initial partition →
//!    refine).
//! 4. **Commit**: greedily map each model block to the global block
//!    maximising a Fennel-style score (connectivity towards already-assigned
//!    neighbors minus the load penalty) under the global balance constraint
//!    `L_max`, then assign all of the model block's nodes at once.
//!
//! Memory stays `O(buffer + k)` — the streaming guarantee is kept, the
//! multilevel quality is (partially) imported. One model graph per batch,
//! assignments of earlier batches feed the connectivity term of later ones,
//! so the algorithm degrades gracefully to plain multilevel when
//! `buffer ≥ n` and to a Fennel-flavoured heuristic when `buffer` is tiny.

use crate::partitioner::{MultilevelConfig, MultilevelPartitioner};
use oms_core::executor::{
    measure_pass, BatchExecutor, PassOutcome, PassTracker, PassTrajectory, RestreamOptions,
};
use oms_core::partition::UNASSIGNED;
use oms_core::scorer::fennel_alpha;
use oms_core::{BlockId, Partition, PartitionError, Result};
use oms_graph::{GraphBuilder, NodeBatch, NodeStream, NodeWeight};
use std::collections::HashMap;
use std::time::Instant;

/// Default buffer size (nodes per model graph).
pub const DEFAULT_BUFFER: usize = 4096;

/// Fennel's γ, reused for the commit score.
const GAMMA: f64 = 1.5;

/// The buffered streaming partitioner: per-batch multilevel model solves
/// with a greedy global commit. `passes > 1` restreams the graph: in later
/// passes the nodes of each batch are first *released* from their previous
/// blocks and the batch is re-solved and re-committed under the global
/// balance constraint, now seeing the connectivity of the whole previous
/// assignment instead of only the prefix streamed so far.
#[derive(Clone, Copy, Debug)]
pub struct BufferedMultilevel {
    k: u32,
    buffer: usize,
    passes: usize,
    convergence: f64,
    config: MultilevelConfig,
}

impl BufferedMultilevel {
    /// Creates a buffered partitioner for `k` blocks with a buffer of
    /// `buffer` nodes (`0` selects [`DEFAULT_BUFFER`]). `config` drives the
    /// per-batch multilevel solves and carries ε and the seed.
    pub fn new(k: u32, buffer: usize, config: MultilevelConfig) -> Self {
        BufferedMultilevel {
            k,
            buffer: if buffer == 0 { DEFAULT_BUFFER } else { buffer },
            passes: 1,
            convergence: 0.0,
            config,
        }
    }

    /// Sets the number of restreaming passes (≥ 1).
    pub fn passes(mut self, passes: usize) -> Self {
        self.passes = passes.max(1);
        self
    }

    /// Sets the relative edge-cut improvement below which a multi-pass run
    /// stops early.
    pub fn convergence(mut self, min_improvement: f64) -> Self {
        self.convergence = min_improvement.max(0.0);
        self
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> u32 {
        self.k
    }

    /// Buffer size in nodes.
    pub fn buffer(&self) -> usize {
        self.buffer
    }

    /// Partitions the nodes delivered by `stream`, batch by batch.
    pub fn partition_stream(&self, stream: &mut dyn NodeStream) -> Result<Partition> {
        Ok(self.partition_restream(stream, false)?.0)
    }

    /// Like [`BufferedMultilevel::partition_stream`], returning the
    /// per-pass quality trajectory of a multi-pass run as well. The pass
    /// loop follows the engine's rules: the stream is rewound between
    /// passes, the run stops once no node moved or the relative cut
    /// improvement fell below the convergence threshold, and a pass that
    /// worsened the cut is rolled back.
    pub fn partition_restream(
        &self,
        stream: &mut dyn NodeStream,
        tracked: bool,
    ) -> Result<(Partition, PassTrajectory)> {
        if self.k == 0 {
            return Err(PartitionError::InvalidConfig(
                "the number of blocks k must be positive".into(),
            ));
        }
        let n = stream.num_nodes();
        let k = self.k as usize;
        let passes = self.passes.max(1);
        let capacity = Partition::capacity(stream.total_node_weight(), self.k, self.config.epsilon);
        let alpha = fennel_alpha(self.k, stream.num_edges(), n);

        let mut state = CommitState {
            assignments: vec![UNASSIGNED; n],
            node_weights: vec![0; n],
            block_weights: vec![0; k],
            capacity,
            alpha,
        };
        let mut local: HashMap<u32, u32> = HashMap::new();
        let measure = tracked || passes > 1;
        let mut tracker = PassTracker::new(RestreamOptions::tracked(passes, self.convergence));
        let mut prev_assign: Vec<BlockId> = Vec::new();
        let mut needs_reset = false;
        let reset = |stream: &mut dyn NodeStream, needs_reset: &mut bool| -> Result<()> {
            if *needs_reset {
                stream.reset().map_err(PartitionError::Graph)?;
            }
            *needs_reset = true;
            Ok(())
        };

        for pass in 0..passes {
            reset(stream, &mut needs_reset)?;
            if measure {
                prev_assign.clear();
                prev_assign.extend_from_slice(&state.assignments);
            }
            let restreaming = pass > 0;
            let mut error: Option<PartitionError> = None;
            let start = Instant::now();
            BatchExecutor::new(self.buffer).run_batches(stream, &mut |batch| {
                if error.is_some() || batch.is_empty() {
                    return;
                }
                if let Err(e) = self.commit_batch(batch, &mut local, &mut state, restreaming) {
                    error = Some(e);
                }
            })?;
            if let Some(e) = error {
                return Err(e);
            }
            let seconds = start.elapsed().as_secs_f64();

            if !measure {
                continue;
            }
            let moved = prev_assign
                .iter()
                .zip(&state.assignments)
                .filter(|(a, b)| a != b)
                .count();
            reset(stream, &mut needs_reset)?;
            let (edge_cut, imbalance) = measure_pass(stream, &state.assignments, self.k)?;
            match tracker.observe(
                pass + 1 == passes,
                moved,
                seconds,
                edge_cut,
                imbalance,
                &state.assignments,
            ) {
                PassOutcome::Continue => {}
                PassOutcome::Stop => break,
                PassOutcome::Revert(best) => {
                    state.restore(&best);
                    break;
                }
            }
        }
        Ok((
            Partition::from_assignments(self.k, state.assignments, &state.node_weights),
            tracker.finish(),
        ))
    }

    /// Solves one batch (steps 2–4 of the module-level recipe). In a
    /// restreaming pass the batch's nodes are first released from their
    /// previous blocks, so the re-commit decides under up-to-date weights.
    fn commit_batch(
        &self,
        batch: &NodeBatch,
        local: &mut HashMap<u32, u32>,
        state: &mut CommitState,
        restreaming: bool,
    ) -> Result<()> {
        let b = batch.len();
        let k = self.k as usize;
        let q = (self.k.min(b as u32)).max(1) as usize;

        local.clear();
        for (i, &id) in batch.ids().iter().enumerate() {
            local.insert(id, i as u32);
        }

        if restreaming {
            // Release the whole batch from its previous blocks before
            // re-deciding: the re-commit must see block weights without the
            // batch, or full blocks could never be re-entered (or left).
            for node in batch.iter() {
                let b = state.assignments[node.node as usize];
                if b != UNASSIGNED {
                    state.block_weights[b as usize] -= state.node_weights[node.node as usize];
                    state.assignments[node.node as usize] = UNASSIGNED;
                }
            }
        }

        // Model graph: batch nodes + batch-internal edges.
        let mut builder = GraphBuilder::with_capacity(b, batch.total_edge_entries() / 2 + 1);
        for (i, node) in batch.iter().enumerate() {
            let li = i as u32;
            builder
                .set_node_weight(li, node.weight)
                .map_err(PartitionError::Graph)?;
            for (u, w) in node.neighbors_weighted() {
                if let Some(&lu) = local.get(&u) {
                    if lu > li {
                        builder
                            .add_weighted_edge(li, lu, w)
                            .map_err(PartitionError::Graph)?;
                    }
                }
            }
        }
        let model = builder.build();

        // Solve the model with the multilevel machinery.
        let model_blocks: Vec<BlockId> = if q == 1 {
            vec![0; b]
        } else {
            MultilevelPartitioner::new(q as u32, self.config)
                .partition(&model)?
                .assignments()
                .to_vec()
        };

        // Connectivity of every model block towards every global block
        // (through neighbors assigned in earlier batches), plus membership.
        let mut conn = vec![0u64; q * k];
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); q];
        let mut mb_weight = vec![0u64; q];
        for (i, node) in batch.iter().enumerate() {
            let mb = model_blocks[i] as usize;
            members[mb].push(i);
            mb_weight[mb] += node.weight;
            for (u, w) in node.neighbors_weighted() {
                if local.contains_key(&u) {
                    continue; // internal edge, already used by the model solve
                }
                let gb = state.assignments[u as usize];
                if gb != UNASSIGNED {
                    conn[mb * k + gb as usize] += w;
                }
            }
        }

        // Commit model blocks in order of decreasing external pull so the
        // strongest affinities are honoured before capacities tighten.
        let mut order: Vec<usize> = (0..q).collect();
        let pull = |mb: usize| conn[mb * k..(mb + 1) * k].iter().sum::<u64>();
        order.sort_by_cached_key(|&mb| (std::cmp::Reverse(pull(mb)), mb));
        for mb in order {
            if members[mb].is_empty() {
                continue;
            }
            let chosen = state.choose_block(&conn[mb * k..(mb + 1) * k], mb_weight[mb]);
            state.block_weights[chosen] += mb_weight[mb];
            for &i in &members[mb] {
                let node = batch.get(i);
                state.assignments[node.node as usize] = chosen as BlockId;
                state.node_weights[node.node as usize] = node.weight;
            }
        }
        Ok(())
    }
}

/// Global assignment state shared by all batches.
struct CommitState {
    assignments: Vec<BlockId>,
    node_weights: Vec<NodeWeight>,
    block_weights: Vec<NodeWeight>,
    capacity: NodeWeight,
    alpha: f64,
}

impl CommitState {
    /// Picks the global block for a model block of weight `weight` with
    /// external connectivities `conn`: the Fennel-style best feasible block,
    /// or the least relatively loaded one when nothing fits.
    fn choose_block(&self, conn: &[u64], weight: NodeWeight) -> usize {
        let mut best: Option<(usize, f64, NodeWeight)> = None;
        let mut fallback = 0usize;
        let mut fallback_load = f64::INFINITY;
        for (gb, (&c, &bw)) in conn.iter().zip(self.block_weights.iter()).enumerate() {
            let load = bw as f64 / self.capacity.max(1) as f64;
            if load < fallback_load {
                fallback_load = load;
                fallback = gb;
            }
            if bw + weight > self.capacity {
                continue;
            }
            let score = c as f64 - self.alpha * GAMMA * (bw as f64).powf(GAMMA - 1.0);
            match best {
                None => best = Some((gb, score, bw)),
                Some((_, bs, bbw)) => {
                    if score > bs || (score == bs && bw < bbw) {
                        best = Some((gb, score, bw));
                    }
                }
            }
        }
        best.map(|(gb, _, _)| gb).unwrap_or(fallback)
    }

    /// Rolls the state back to a previously observed assignment (the pass
    /// loop's revert-on-worsen guard), rebuilding the block weights.
    fn restore(&mut self, assignments: &[BlockId]) {
        self.assignments.copy_from_slice(assignments);
        self.block_weights.fill(0);
        for (v, &b) in self.assignments.iter().enumerate() {
            if b != UNASSIGNED {
                self.block_weights[b as usize] += self.node_weights[v];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oms_core::{Hashing, OnePassConfig, StreamingPartitioner};
    use oms_graph::{CsrGraph, InMemoryStream};

    fn buffered(k: u32, buffer: usize, seed: u64) -> BufferedMultilevel {
        BufferedMultilevel::new(
            k,
            buffer,
            MultilevelConfig {
                seed,
                ..MultilevelConfig::default()
            },
        )
    }

    fn run(p: &BufferedMultilevel, g: &CsrGraph) -> Partition {
        p.partition_stream(&mut InMemoryStream::new(g)).unwrap()
    }

    #[test]
    fn produces_a_valid_complete_partition() {
        let g = oms_gen::planted_partition(500, 8, 0.1, 0.01, 3);
        for buffer in [32, 100, 4096] {
            let p = run(&buffered(8, buffer, 0), &g);
            assert_eq!(p.num_nodes(), 500);
            assert_eq!(p.num_blocks(), 8);
            assert!(p.validate(&vec![1; 500]), "buffer {buffer}");
        }
    }

    #[test]
    fn beats_hashing_on_community_graphs() {
        let g = oms_gen::planted_partition(600, 8, 0.12, 0.005, 7);
        let buf = run(&buffered(8, 200, 0), &g);
        let hash = Hashing::new(8, OnePassConfig::default())
            .partition_graph(&g)
            .unwrap();
        assert!(
            buf.edge_cut(&g) < hash.edge_cut(&g),
            "buffered {} vs hashing {}",
            buf.edge_cut(&g),
            hash.edge_cut(&g)
        );
    }

    #[test]
    fn stays_reasonably_balanced() {
        let g = oms_gen::planted_partition(800, 16, 0.08, 0.004, 9);
        let p = run(&buffered(16, 256, 0), &g);
        assert!(p.imbalance() < 0.25, "imbalance {}", p.imbalance());
    }

    #[test]
    fn is_deterministic_for_a_fixed_seed() {
        let g = oms_gen::planted_partition(400, 8, 0.1, 0.01, 11);
        let a = run(&buffered(8, 128, 5), &g);
        let b = run(&buffered(8, 128, 5), &g);
        assert_eq!(a, b);
    }

    #[test]
    fn single_block_and_tiny_batches_work() {
        let g = oms_gen::planted_partition(50, 2, 0.3, 0.05, 13);
        let p = run(&buffered(1, 7, 0), &g);
        assert_eq!(p.edge_cut(&g), 0);
        assert!(p.assignments().iter().all(|&b| b == 0));
        // More blocks than nodes per batch (q = |batch|).
        let p = run(&buffered(16, 4, 0), &g);
        assert_eq!(p.num_nodes(), 50);
        assert!(p.validate(&vec![1; 50]));
    }

    #[test]
    fn zero_buffer_selects_the_default() {
        assert_eq!(buffered(4, 0, 0).buffer(), DEFAULT_BUFFER);
        assert_eq!(buffered(4, 123, 0).buffer(), 123);
    }

    #[test]
    fn empty_graph_yields_empty_partition() {
        let g = CsrGraph::empty(0);
        let p = run(&buffered(4, 64, 0), &g);
        assert_eq!(p.num_nodes(), 0);
    }

    #[test]
    fn zero_blocks_is_rejected() {
        let g = CsrGraph::empty(5);
        assert!(buffered(0, 64, 0)
            .partition_stream(&mut InMemoryStream::new(&g))
            .is_err());
    }
}
