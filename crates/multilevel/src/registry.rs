//! Plugs the in-memory baselines into the shared `oms-core::api` registry.
//!
//! `oms-core` cannot depend on this crate, so the `multilevel` and `rms`
//! entries are contributed from here: frontends call
//! [`register_algorithms`] once at startup and every
//! [`JobSpec`] string can then select the in-memory
//! baselines exactly like the streaming algorithms.

use crate::buffered::BufferedMultilevel;
use crate::hierarchical::RecursiveMultisection;
use crate::partitioner::{MultilevelConfig, MultilevelPartitioner};
use oms_core::api::{materialize_stream, register_algorithm, AlgorithmInfo, JobSpec, Partitioner};
use oms_core::{Partition, PartitionError, Result};
use oms_graph::NodeStream;

impl Partitioner for MultilevelPartitioner {
    fn name(&self) -> String {
        "multilevel".to_string()
    }

    fn num_blocks(&self) -> u32 {
        MultilevelPartitioner::num_blocks(self)
    }

    fn partition(&self, stream: &mut dyn NodeStream) -> Result<Partition> {
        let graph = materialize_stream(stream)?;
        MultilevelPartitioner::partition(self, &graph)
    }
}

impl Partitioner for RecursiveMultisection {
    fn name(&self) -> String {
        "rms".to_string()
    }

    fn num_blocks(&self) -> u32 {
        RecursiveMultisection::num_blocks(self)
    }

    fn partition(&self, stream: &mut dyn NodeStream) -> Result<Partition> {
        let graph = materialize_stream(stream)?;
        RecursiveMultisection::partition(self, &graph)
    }
}

impl Partitioner for BufferedMultilevel {
    fn name(&self) -> String {
        "buffered".to_string()
    }

    fn num_blocks(&self) -> u32 {
        BufferedMultilevel::num_blocks(self)
    }

    fn partition(&self, stream: &mut dyn NodeStream) -> Result<Partition> {
        self.partition_stream(stream)
    }
}

fn multilevel_config(spec: &JobSpec) -> MultilevelConfig {
    MultilevelConfig {
        epsilon: spec.epsilon,
        threads: spec.threads.max(1),
        seed: spec.seed,
        ..MultilevelConfig::default()
    }
}

fn build_multilevel(spec: &JobSpec) -> Result<Box<dyn Partitioner>> {
    if spec.passes > 1 {
        return Err(PartitionError::InvalidSpec(
            "multilevel is not a streaming algorithm and does not support passes > 1".into(),
        ));
    }
    Ok(Box::new(MultilevelPartitioner::new(
        spec.num_blocks(),
        multilevel_config(spec),
    )))
}

fn build_rms(spec: &JobSpec) -> Result<Box<dyn Partitioner>> {
    if spec.passes > 1 {
        return Err(PartitionError::InvalidSpec(
            "rms is not a streaming algorithm and does not support passes > 1".into(),
        ));
    }
    let Some(hierarchy) = spec.shape.hierarchy() else {
        return Err(PartitionError::InvalidSpec(
            "rms needs a hierarchical shape (e.g. rms:4:16:8)".into(),
        ));
    };
    Ok(Box::new(RecursiveMultisection::new(
        hierarchy.clone(),
        multilevel_config(spec),
    )))
}

fn build_buffered(spec: &JobSpec) -> Result<Box<dyn Partitioner>> {
    if spec.passes > 1 {
        return Err(PartitionError::InvalidSpec(
            "buffered does not support restreaming (passes > 1)".into(),
        ));
    }
    Ok(Box::new(BufferedMultilevel::new(
        spec.num_blocks(),
        spec.buffer,
        multilevel_config(spec),
    )))
}

/// Registers the in-memory baselines (`multilevel`, `rms`) and the buffered
/// streaming algorithm (`buffered`) in the shared algorithm registry.
/// Idempotent; call once at frontend startup.
pub fn register_algorithms() {
    register_algorithm(AlgorithmInfo {
        name: "multilevel",
        aliases: &["ml", "kaminpar"],
        description: "in-memory multilevel k-way baseline (coarsen / partition / refine)",
        supports_hierarchy: false,
        build: build_multilevel,
    });
    register_algorithm(AlgorithmInfo {
        name: "rms",
        aliases: &["offline-oms", "intmap"],
        description: "offline recursive multi-section along a hierarchy (IntMap stand-in)",
        supports_hierarchy: true,
        build: build_rms,
    });
    register_algorithm(AlgorithmInfo {
        name: "buffered",
        aliases: &["heistream", "buffered-multilevel"],
        description: "buffered streaming: per-batch multilevel model solves (buf=<nodes>)",
        supports_hierarchy: false,
        build: build_buffered,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use oms_graph::InMemoryStream;

    #[test]
    fn jobspec_builds_and_runs_multilevel() {
        register_algorithms();
        let g = oms_gen::planted_partition(300, 8, 0.1, 0.01, 3);
        let report = oms_core::JobSpec::parse("multilevel:8")
            .unwrap()
            .build()
            .unwrap()
            .run(&mut InMemoryStream::new(&g))
            .unwrap();
        assert_eq!(report.algorithm, "multilevel");
        assert_eq!(report.partition.num_nodes(), 300);
        assert!(report.is_balanced(0.031));
    }

    #[test]
    fn jobspec_builds_and_runs_rms_with_mapping_cost() {
        register_algorithms();
        let g = oms_gen::planted_partition(300, 8, 0.1, 0.01, 5);
        let report = oms_core::JobSpec::parse("rms:2:2:2@dist=1:10:100")
            .unwrap()
            .build()
            .unwrap()
            .run(&mut InMemoryStream::new(&g))
            .unwrap();
        assert_eq!(report.algorithm, "rms");
        assert_eq!(report.num_blocks(), 8);
        assert!(report.mapping_cost.unwrap() >= report.edge_cut);
    }

    #[test]
    fn rms_requires_a_hierarchy() {
        register_algorithms();
        assert!(oms_core::JobSpec::parse("rms:8").unwrap().build().is_err());
    }

    #[test]
    fn jobspec_builds_and_runs_buffered_with_buf_parameter() {
        register_algorithms();
        let g = oms_gen::planted_partition(300, 8, 0.1, 0.01, 7);
        let job = oms_core::JobSpec::parse("buffered:8@seed=3,buf=64").unwrap();
        assert_eq!(job.buffer, 64);
        assert_eq!(job.to_string(), "buffered:8@seed=3,buf=64");
        let report = job
            .build()
            .unwrap()
            .run(&mut InMemoryStream::new(&g))
            .unwrap();
        assert_eq!(report.algorithm, "buffered");
        assert_eq!(report.partition.num_nodes(), 300);
        assert!(report.partition.validate(&vec![1; 300]));
    }

    #[test]
    fn buffered_rejects_restreaming_and_resolves_aliases() {
        register_algorithms();
        assert!(oms_core::JobSpec::parse("buffered:4@passes=2")
            .unwrap()
            .build()
            .is_err());
        assert_eq!(
            oms_core::find_algorithm("heistream").unwrap().name,
            "buffered"
        );
    }
}
