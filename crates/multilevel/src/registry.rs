//! Plugs the in-memory baselines into the shared `oms-core::api` registry.
//!
//! `oms-core` cannot depend on this crate, so the `multilevel` and `rms`
//! entries are contributed from here: frontends call
//! [`register_algorithms`] once at startup and every
//! [`JobSpec`] string can then select the in-memory
//! baselines exactly like the streaming algorithms.

use crate::buffered::BufferedMultilevel;
use crate::hierarchical::RecursiveMultisection;
use crate::partitioner::{MultilevelConfig, MultilevelPartitioner};
use oms_core::api::{materialize_stream, register_algorithm, AlgorithmInfo, JobSpec, Partitioner};
use oms_core::executor::PassTrajectory;
use oms_core::{refine_partition, OnePassConfig, Partition, PartitionError, Result};
use oms_graph::NodeStream;
use std::time::Instant;

impl Partitioner for MultilevelPartitioner {
    fn name(&self) -> String {
        "multilevel".to_string()
    }

    fn num_blocks(&self) -> u32 {
        MultilevelPartitioner::num_blocks(self)
    }

    fn partition(&self, stream: &mut dyn NodeStream) -> Result<Partition> {
        let graph = materialize_stream(stream)?;
        MultilevelPartitioner::partition(self, &graph)
    }
}

impl Partitioner for RecursiveMultisection {
    fn name(&self) -> String {
        "rms".to_string()
    }

    fn num_blocks(&self) -> u32 {
        RecursiveMultisection::num_blocks(self)
    }

    fn partition(&self, stream: &mut dyn NodeStream) -> Result<Partition> {
        let graph = materialize_stream(stream)?;
        RecursiveMultisection::partition(self, &graph)
    }
}

impl Partitioner for BufferedMultilevel {
    fn name(&self) -> String {
        "buffered".to_string()
    }

    fn num_blocks(&self) -> u32 {
        BufferedMultilevel::num_blocks(self)
    }

    fn partition(&self, stream: &mut dyn NodeStream) -> Result<Partition> {
        self.partition_stream(stream)
    }

    fn partition_tracked(
        &self,
        stream: &mut dyn NodeStream,
    ) -> Result<(Partition, PassTrajectory)> {
        self.partition_restream(stream, true)
    }
}

/// `passes > 1` for the in-memory one-shot algorithms (`multilevel`, `rms`):
/// the base solve becomes pass 0 and the remaining passes are restreaming
/// refinement ([`refine_partition`]) of its partition under the balance
/// constraint — the engine's guard makes the result never worse than the
/// base solve.
struct RefinedInMemory {
    base: Box<dyn Partitioner>,
    config: OnePassConfig,
    passes: usize,
    convergence: f64,
}

impl RefinedInMemory {
    fn run(&self, stream: &mut dyn NodeStream) -> Result<(Partition, PassTrajectory)> {
        let start = Instant::now();
        let seed = self.base.partition(stream)?;
        let solve_seconds = start.elapsed().as_secs_f64();
        // The base solve consumed (at least) one pass; the refinement
        // streams the same source from the top.
        stream.reset()?;
        let (refined, mut trajectory) =
            refine_partition(stream, seed, self.config, self.passes - 1, self.convergence)?;
        if let Some(first) = trajectory.stats.first_mut() {
            first.seconds = solve_seconds;
        }
        Ok((refined, trajectory))
    }
}

impl Partitioner for RefinedInMemory {
    fn name(&self) -> String {
        self.base.name()
    }

    fn num_blocks(&self) -> u32 {
        self.base.num_blocks()
    }

    fn partition(&self, stream: &mut dyn NodeStream) -> Result<Partition> {
        Ok(self.run(stream)?.0)
    }

    fn partition_tracked(
        &self,
        stream: &mut dyn NodeStream,
    ) -> Result<(Partition, PassTrajectory)> {
        self.run(stream)
    }
}

/// Wraps `base` for restreaming refinement when the job asks for more than
/// one pass.
fn with_refinement(base: Box<dyn Partitioner>, spec: &JobSpec) -> Box<dyn Partitioner> {
    if spec.passes <= 1 {
        return base;
    }
    Box::new(RefinedInMemory {
        base,
        config: spec.one_pass_config(),
        passes: spec.passes,
        convergence: spec.convergence,
    })
}

fn multilevel_config(spec: &JobSpec) -> MultilevelConfig {
    MultilevelConfig {
        epsilon: spec.epsilon,
        threads: spec.threads.max(1),
        seed: spec.seed,
        ..MultilevelConfig::default()
    }
}

fn build_multilevel(spec: &JobSpec) -> Result<Box<dyn Partitioner>> {
    Ok(with_refinement(
        Box::new(MultilevelPartitioner::new(
            spec.num_blocks(),
            multilevel_config(spec),
        )),
        spec,
    ))
}

fn build_rms(spec: &JobSpec) -> Result<Box<dyn Partitioner>> {
    let Some(hierarchy) = spec.shape.hierarchy() else {
        return Err(PartitionError::InvalidSpec(
            "rms needs a hierarchical shape (e.g. rms:4:16:8)".into(),
        ));
    };
    // The refinement passes optimize edge-cut with a flat objective; on a
    // mapping job (dist=) they could silently worsen the objective J the
    // run is evaluated on, so the combination is rejected.
    if spec.passes > 1 && spec.distances.is_some() {
        return Err(PartitionError::InvalidSpec(
            "rms: passes>1 refines the edge-cut only and cannot be combined with dist= \
             (it could worsen the mapping objective J); drop dist= or use oms with passes>1"
                .into(),
        ));
    }
    Ok(with_refinement(
        Box::new(RecursiveMultisection::new(
            hierarchy.clone(),
            multilevel_config(spec),
        )),
        spec,
    ))
}

fn build_buffered(spec: &JobSpec) -> Result<Box<dyn Partitioner>> {
    Ok(Box::new(
        BufferedMultilevel::new(spec.num_blocks(), spec.buffer, multilevel_config(spec))
            .passes(spec.passes)
            .convergence(spec.convergence),
    ))
}

/// Registers the in-memory baselines (`multilevel`, `rms`) and the buffered
/// streaming algorithm (`buffered`) in the shared algorithm registry.
/// Idempotent; call once at frontend startup.
pub fn register_algorithms() {
    register_algorithm(AlgorithmInfo {
        name: "multilevel",
        aliases: &["ml", "kaminpar"],
        description: "in-memory multilevel k-way baseline; passes>1 adds restream refinement",
        supports_hierarchy: false,
        supports_repair: false,
        supports_sharding: false,
        build: build_multilevel,
    });
    register_algorithm(AlgorithmInfo {
        name: "rms",
        aliases: &["offline-oms", "intmap"],
        description: "offline recursive multi-section along a hierarchy; passes>1 refines",
        supports_hierarchy: true,
        supports_repair: false,
        supports_sharding: false,
        build: build_rms,
    });
    register_algorithm(AlgorithmInfo {
        name: "buffered",
        aliases: &["heistream", "buffered-multilevel"],
        description:
            "buffered streaming: per-batch multilevel solves (buf=<nodes>); passes>1 re-commits",
        supports_hierarchy: false,
        supports_repair: false,
        supports_sharding: false,
        build: build_buffered,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use oms_graph::InMemoryStream;

    #[test]
    fn jobspec_builds_and_runs_multilevel() {
        register_algorithms();
        let g = oms_gen::planted_partition(300, 8, 0.1, 0.01, 3);
        let report = oms_core::JobSpec::parse("multilevel:8")
            .unwrap()
            .build()
            .unwrap()
            .run(&mut InMemoryStream::new(&g))
            .unwrap();
        assert_eq!(report.algorithm, "multilevel");
        assert_eq!(report.partition.num_nodes(), 300);
        assert!(report.is_balanced(0.031));
    }

    #[test]
    fn jobspec_builds_and_runs_rms_with_mapping_cost() {
        register_algorithms();
        let g = oms_gen::planted_partition(300, 8, 0.1, 0.01, 5);
        let report = oms_core::JobSpec::parse("rms:2:2:2@dist=1:10:100")
            .unwrap()
            .build()
            .unwrap()
            .run(&mut InMemoryStream::new(&g))
            .unwrap();
        assert_eq!(report.algorithm, "rms");
        assert_eq!(report.num_blocks(), 8);
        assert!(report.mapping_cost.unwrap() >= report.edge_cut);
    }

    #[test]
    fn rms_requires_a_hierarchy() {
        register_algorithms();
        assert!(oms_core::JobSpec::parse("rms:8").unwrap().build().is_err());
    }

    #[test]
    fn jobspec_builds_and_runs_buffered_with_buf_parameter() {
        register_algorithms();
        let g = oms_gen::planted_partition(300, 8, 0.1, 0.01, 7);
        let job = oms_core::JobSpec::parse("buffered:8@seed=3,buf=64").unwrap();
        assert_eq!(job.buffer, 64);
        assert_eq!(job.to_string(), "buffered:8@seed=3,buf=64");
        let report = job
            .build()
            .unwrap()
            .run(&mut InMemoryStream::new(&g))
            .unwrap();
        assert_eq!(report.algorithm, "buffered");
        assert_eq!(report.partition.num_nodes(), 300);
        assert!(report.partition.validate(&vec![1; 300]));
    }

    #[test]
    fn buffered_restreams_and_resolves_aliases() {
        register_algorithms();
        let g = oms_gen::planted_partition(300, 8, 0.1, 0.01, 9);
        let report = oms_core::JobSpec::parse("buffered:8@seed=3,buf=64,passes=3")
            .unwrap()
            .build()
            .unwrap()
            .run(&mut InMemoryStream::new(&g))
            .unwrap();
        assert!(!report.trajectory.is_empty());
        assert!(
            report
                .trajectory
                .windows(2)
                .all(|w| w[1].edge_cut <= w[0].edge_cut),
            "buffered restreaming must not worsen the cut: {:?}",
            report.trajectory
        );
        assert_eq!(
            report.trajectory.last().unwrap().edge_cut,
            report.edge_cut,
            "the reported cut is the last accepted pass"
        );
        assert_eq!(
            oms_core::find_algorithm("heistream").unwrap().name,
            "buffered"
        );
    }

    #[test]
    fn rms_rejects_refinement_passes_on_mapping_jobs() {
        register_algorithms();
        let Err(err) = oms_core::JobSpec::parse("rms:2:2:2@dist=1:10:100,passes=2")
            .unwrap()
            .build()
        else {
            panic!("rms with dist= and passes>1 must be rejected");
        };
        assert!(err.to_string().contains("dist="), "{err}");
        // Without distances the refinement is fine.
        assert!(oms_core::JobSpec::parse("rms:2:2:2@passes=2")
            .unwrap()
            .build()
            .is_ok());
    }

    #[test]
    fn multilevel_and_rms_support_refinement_passes() {
        register_algorithms();
        let g = oms_gen::planted_partition(300, 8, 0.1, 0.01, 11);
        for spec in ["multilevel:8@seed=3,passes=3", "rms:2:2:2@seed=3,passes=2"] {
            let report = oms_core::JobSpec::parse(spec)
                .unwrap()
                .build()
                .unwrap()
                .run(&mut InMemoryStream::new(&g))
                .unwrap();
            assert!(!report.trajectory.is_empty(), "{spec}");
            assert!(
                report
                    .trajectory
                    .windows(2)
                    .all(|w| w[1].edge_cut <= w[0].edge_cut),
                "{spec}: refinement must not worsen the base solve: {:?}",
                report.trajectory
            );
            assert_eq!(report.trajectory.last().unwrap().edge_cut, report.edge_cut);
            assert_eq!(report.partition.num_nodes(), 300, "{spec}");
        }
    }
}
