//! Size-constrained label-propagation refinement.
//!
//! Given a `k`-way assignment, nodes greedily move to the adjacent block with
//! the highest connectivity gain as long as the balance constraint stays
//! satisfied. This is the refinement used by KaMinPar-style partitioners; a
//! few rounds per level are enough to clean up the projected partition.

use oms_core::{BlockId, Partition};
use oms_graph::{CsrGraph, NodeWeight};
use rayon::prelude::*;

use std::sync::atomic::{AtomicU64, Ordering};

/// Options for the refinement.
#[derive(Clone, Copy, Debug)]
pub struct RefineConfig {
    /// Allowed imbalance ε.
    pub epsilon: f64,
    /// Number of refinement rounds.
    pub rounds: usize,
    /// Number of threads (1 = deterministic sequential behaviour).
    pub threads: usize,
}

impl Default for RefineConfig {
    fn default() -> Self {
        RefineConfig {
            epsilon: 0.03,
            rounds: 3,
            threads: 1,
        }
    }
}

/// Refines `assignment` in place; returns the number of nodes moved.
pub fn refine(
    graph: &CsrGraph,
    assignment: &mut [BlockId],
    k: u32,
    config: &RefineConfig,
) -> usize {
    assert_eq!(assignment.len(), graph.num_nodes());
    let capacity = Partition::capacity(graph.total_node_weight(), k, config.epsilon);
    let block_weights: Vec<AtomicU64> = {
        let mut weights = vec![0u64; k as usize];
        for v in graph.nodes() {
            weights[assignment[v as usize] as usize] += graph.node_weight(v);
        }
        weights.into_iter().map(AtomicU64::new).collect()
    };

    let n = graph.num_nodes();
    let threads = config.threads.max(1);
    let chunk = n.div_ceil(threads * 8).max(1);
    let ranges: Vec<(u32, u32)> = (0..n)
        .step_by(chunk)
        .map(|lo| (lo as u32, (lo + chunk).min(n) as u32))
        .collect();

    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("failed to build rayon pool");

    let mut total_moves = 0usize;
    for _ in 0..config.rounds {
        // Phase 1: each chunk proposes moves based on the current assignment.
        let proposals: Vec<Vec<(u32, BlockId)>> = pool.install(|| {
            ranges
                .par_iter()
                .map(|&(lo, hi)| {
                    let mut local = Vec::new();
                    // Dense connectivity scratchpad with a touched list:
                    // deterministic iteration (ascending block id breaks
                    // gain ties) and no hashing on the hot path.
                    let mut conn: Vec<u64> = vec![0; k as usize];
                    let mut touched: Vec<BlockId> = Vec::new();
                    for v in lo..hi {
                        if graph.degree(v) == 0 {
                            continue;
                        }
                        let current = assignment[v as usize];
                        for (u, w) in graph.neighbors_weighted(v) {
                            let b = assignment[u as usize];
                            if conn[b as usize] == 0 {
                                touched.push(b);
                            }
                            conn[b as usize] += w;
                        }
                        let current_conn = conn[current as usize];
                        let v_weight = graph.node_weight(v);
                        let mut best = current;
                        let mut best_gain = 0i64;
                        touched.sort_unstable();
                        for &target in &touched {
                            if target == current {
                                continue;
                            }
                            let gain = conn[target as usize] as i64 - current_conn as i64;
                            let target_weight =
                                block_weights[target as usize].load(Ordering::Relaxed);
                            if gain > best_gain && target_weight + v_weight <= capacity {
                                best = target;
                                best_gain = gain;
                            }
                        }
                        if best != current {
                            local.push((v, best));
                        }
                        for &b in &touched {
                            conn[b as usize] = 0;
                        }
                        touched.clear();
                    }
                    local
                })
                .collect()
        });

        // Phase 2: apply the proposals sequentially, re-checking capacity so
        // the balance constraint cannot be violated by concurrent proposals.
        let mut moves = 0usize;
        for (v, target) in proposals.into_iter().flatten() {
            let current = assignment[v as usize];
            if current == target {
                continue;
            }
            let v_weight: NodeWeight = graph.node_weight(v);
            if block_weights[target as usize].load(Ordering::Relaxed) + v_weight > capacity {
                continue;
            }
            block_weights[current as usize].fetch_sub(v_weight, Ordering::Relaxed);
            block_weights[target as usize].fetch_add(v_weight, Ordering::Relaxed);
            assignment[v as usize] = target;
            moves += 1;
        }
        total_moves += moves;
        if moves == 0 {
            break;
        }
    }
    total_moves
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cut(graph: &CsrGraph, assignment: &[BlockId]) -> u64 {
        graph
            .edges()
            .filter(|&(u, v, _)| assignment[u as usize] != assignment[v as usize])
            .map(|(_, _, w)| w)
            .sum()
    }

    #[test]
    fn refinement_fixes_an_obviously_bad_assignment() {
        // Two cliques; start with an interleaved assignment and let the
        // refinement sort it out.
        let mut edges = Vec::new();
        for u in 0..8u32 {
            for v in (u + 1)..8 {
                edges.push((u, v));
                edges.push((u + 8, v + 8));
            }
        }
        edges.push((0, 8));
        let g = CsrGraph::from_edges(16, &edges).unwrap();
        let mut assignment: Vec<BlockId> = (0..16).map(|v| (v % 2) as BlockId).collect();
        let before = cut(&g, &assignment);
        let moves = refine(&g, &mut assignment, 2, &RefineConfig::default());
        let after = cut(&g, &assignment);
        assert!(moves > 0);
        assert!(
            after < before,
            "refinement must reduce the cut: {before} → {after}"
        );
        let p = Partition::from_assignments(2, assignment, &[1; 16]);
        assert!(p.is_balanced(0.04));
    }

    #[test]
    fn refinement_respects_balance() {
        let g = oms_gen::planted_partition(200, 4, 0.15, 0.01, 3);
        // Start from a balanced random-ish assignment.
        let mut assignment: Vec<BlockId> = (0..200).map(|v| (v % 4) as BlockId).collect();
        refine(&g, &mut assignment, 4, &RefineConfig::default());
        let p = Partition::from_assignments(4, assignment, &vec![1; 200]);
        assert!(p.is_balanced(0.03 + 1e-9), "imbalance {}", p.imbalance());
    }

    #[test]
    fn refinement_never_increases_cut_substantially() {
        let g = oms_gen::erdos_renyi_gnm(300, 1500, 7);
        let mut assignment: Vec<BlockId> = (0..300).map(|v| (v % 8) as BlockId).collect();
        let before = cut(&g, &assignment);
        refine(&g, &mut assignment, 8, &RefineConfig::default());
        let after = cut(&g, &assignment);
        assert!(after <= before);
    }

    #[test]
    fn parallel_refinement_produces_valid_partitions() {
        let g = oms_gen::planted_partition(400, 8, 0.1, 0.01, 9);
        let mut assignment: Vec<BlockId> = (0..400).map(|v| (v % 8) as BlockId).collect();
        let cfg = RefineConfig {
            epsilon: 0.03,
            rounds: 3,
            threads: 4,
        };
        refine(&g, &mut assignment, 8, &cfg);
        let p = Partition::from_assignments(8, assignment, &vec![1; 400]);
        assert!(p.is_balanced(0.03 + 1e-9));
    }

    #[test]
    fn zero_rounds_do_nothing() {
        let g = oms_gen::erdos_renyi_gnm(50, 100, 1);
        let mut assignment: Vec<BlockId> = (0..50).map(|v| (v % 2) as BlockId).collect();
        let original = assignment.clone();
        let cfg = RefineConfig {
            rounds: 0,
            ..RefineConfig::default()
        };
        assert_eq!(refine(&g, &mut assignment, 2, &cfg), 0);
        assert_eq!(assignment, original);
    }
}
