//! Size-constrained label propagation clustering (the coarsening heart of
//! the multilevel partitioner).
//!
//! Every node starts as its own cluster; in each round nodes adopt the
//! cluster with which they share the most edge weight, provided the cluster
//! stays below a weight limit. A handful of rounds suffices to shrink
//! real-world graphs by a large factor per level.

use oms_core::scorer::hash_node;
use oms_graph::{CsrGraph, NodeId, NodeWeight};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;

/// Options of the label propagation clustering.
#[derive(Clone, Copy, Debug)]
pub struct ClusteringConfig {
    /// Upper bound on the weight of a cluster.
    pub max_cluster_weight: NodeWeight,
    /// Number of label propagation rounds.
    pub rounds: usize,
    /// Seed for the node visit order.
    pub seed: u64,
}

impl Default for ClusteringConfig {
    fn default() -> Self {
        ClusteringConfig {
            max_cluster_weight: NodeWeight::MAX,
            rounds: 3,
            seed: 0,
        }
    }
}

/// Runs label propagation and returns one cluster id per node.
///
/// Cluster ids are arbitrary node ids (the "label" that won); use
/// [`crate::contract::relabel`] to compact them before contraction.
pub fn label_propagation(graph: &CsrGraph, config: &ClusteringConfig) -> Vec<NodeId> {
    let n = graph.num_nodes();
    let mut cluster: Vec<NodeId> = (0..n as NodeId).collect();
    let mut cluster_weight: Vec<NodeWeight> =
        (0..n as NodeId).map(|v| graph.node_weight(v)).collect();

    let mut order: Vec<NodeId> = (0..n as NodeId).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut gains: HashMap<NodeId, u64> = HashMap::new();

    for round in 0..config.rounds {
        order.shuffle(&mut rng);
        let mut moved = 0usize;
        for &v in &order {
            if graph.degree(v) == 0 {
                continue;
            }
            let current = cluster[v as usize];
            let v_weight = graph.node_weight(v);
            gains.clear();
            for (u, w) in graph.neighbors_weighted(v) {
                *gains.entry(cluster[u as usize]).or_insert(0) += w;
            }
            // Best target: maximum shared edge weight, respecting the weight
            // limit. A node only moves on a *strict* gain over its current
            // cluster (hysteresis), and equal-gain targets are ranked by a
            // seeded hash rather than by id — a global "smallest id wins"
            // rule would turn low-id nodes into attractors that can drag
            // whole communities across a single bridge edge. The hash makes
            // the choice independent of the HashMap iteration order, keeping
            // the clustering deterministic per seed across processes.
            let tie_key = |target: NodeId| {
                hash_node(
                    target,
                    config.seed ^ ((round as u64) << 48) ^ ((v as u64) << 16),
                )
            };
            let mut best = current;
            let mut best_gain = gains.get(&current).copied().unwrap_or(0);
            for (&target, &gain) in &gains {
                if target == current {
                    continue;
                }
                let fits = cluster_weight[target as usize] + v_weight <= config.max_cluster_weight;
                if !fits {
                    continue;
                }
                if gain > best_gain
                    || (gain == best_gain && best != current && tie_key(target) > tie_key(best))
                {
                    best = target;
                    best_gain = gain;
                }
            }
            if best != current {
                cluster_weight[current as usize] -= v_weight;
                cluster_weight[best as usize] += v_weight;
                cluster[v as usize] = best;
                moved += 1;
            }
        }
        if moved == 0 {
            break;
        }
    }
    cluster
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_cliques(size: usize) -> CsrGraph {
        let mut edges = Vec::new();
        let s = size as NodeId;
        for u in 0..s {
            for v in (u + 1)..s {
                edges.push((u, v));
                edges.push((u + s, v + s));
            }
        }
        edges.push((0, s));
        CsrGraph::from_edges(2 * size, &edges).unwrap()
    }

    fn num_clusters(cluster: &[NodeId]) -> usize {
        let mut c = cluster.to_vec();
        c.sort_unstable();
        c.dedup();
        c.len()
    }

    #[test]
    fn cliques_collapse_into_their_own_clusters() {
        let g = two_cliques(6);
        let cluster = label_propagation(&g, &ClusteringConfig::default());
        // All nodes of the first clique share a label, ditto for the second,
        // and the two labels differ (the single bridge edge cannot win
        // against 5 internal neighbors).
        for v in 1..6 {
            assert_eq!(cluster[v], cluster[0]);
        }
        for v in 7..12 {
            assert_eq!(cluster[v], cluster[6]);
        }
        assert_ne!(cluster[0], cluster[6]);
    }

    #[test]
    fn weight_limit_is_respected() {
        let g = two_cliques(8);
        let config = ClusteringConfig {
            max_cluster_weight: 4,
            rounds: 5,
            seed: 1,
        };
        let cluster = label_propagation(&g, &config);
        let mut weights: HashMap<NodeId, u64> = HashMap::new();
        for v in 0..g.num_nodes() as NodeId {
            *weights.entry(cluster[v as usize]).or_insert(0) += g.node_weight(v);
        }
        assert!(weights.values().all(|&w| w <= 4));
        assert!(num_clusters(&cluster) >= 4);
    }

    #[test]
    fn isolated_nodes_stay_alone() {
        let g = CsrGraph::from_edges(5, &[(0, 1)]).unwrap();
        let cluster = label_propagation(&g, &ClusteringConfig::default());
        assert_eq!(cluster[2], 2);
        assert_eq!(cluster[3], 3);
        assert_eq!(cluster[4], 4);
    }

    #[test]
    fn clustering_shrinks_community_graphs() {
        let g = oms_gen::planted_partition(300, 10, 0.2, 0.002, 5);
        let cluster = label_propagation(&g, &ClusteringConfig::default());
        assert!(
            num_clusters(&cluster) < 100,
            "expected strong shrinkage, got {} clusters",
            num_clusters(&cluster)
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let g = oms_gen::planted_partition(200, 4, 0.1, 0.01, 9);
        let cfg = ClusteringConfig::default();
        assert_eq!(label_propagation(&g, &cfg), label_propagation(&g, &cfg));
    }
}
