//! # oms-multilevel
//!
//! A self-contained, shared-memory **multilevel graph partitioner** used as
//! the internal-memory reference point of the evaluation.
//!
//! The paper compares its streaming algorithms against two in-memory tools:
//! KaMinPar (a very fast parallel multilevel partitioner) and IntMap (an
//! integrated multilevel process-mapping algorithm). Neither is
//! redistributable here, so this crate implements the same algorithmic
//! recipe from scratch:
//!
//! 1. **Coarsening** by size-constrained label propagation clustering and
//!    graph contraction ([`clustering`], [`contract`]);
//! 2. **Initial partitioning** of the coarsest graph with a greedy streaming
//!    pass followed by refinement ([`initial`]);
//! 3. **Uncoarsening** with size-constrained label-propagation refinement at
//!    every level ([`refine`]).
//!
//! [`MultilevelPartitioner`] (the KaMinPar stand-in) solves plain `k`-way
//! partitioning; [`hierarchical::RecursiveMultisection`] (the IntMap
//! stand-in) applies it recursively along a communication hierarchy so the
//! result is simultaneously a process mapping.
//!
//! [`BufferedMultilevel`] bridges the two worlds: a *buffered streaming*
//! algorithm (HeiStream-style) that pulls node batches from the batch
//! executor, solves each batch as an in-memory model graph with the
//! multilevel machinery and commits the result under the global balance
//! constraint — streaming memory, multilevel quality.
//!
//! Both are orders of magnitude slower and more memory-hungry than the
//! streaming algorithms in `oms-core` — exactly the trade-off the paper's
//! Figure 2 illustrates — but produce much better cuts and mappings.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buffered;
pub mod clustering;
pub mod contract;
pub mod hierarchical;
pub mod initial;
pub mod partitioner;
pub mod refine;
pub mod registry;

pub use buffered::BufferedMultilevel;
pub use hierarchical::RecursiveMultisection;
pub use partitioner::{MultilevelConfig, MultilevelPartitioner};
pub use registry::register_algorithms;
