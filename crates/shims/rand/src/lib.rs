//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment of this workspace has no access to crates.io, so
//! this local crate re-implements exactly the slice of the `rand` 0.8 API the
//! workspace uses: [`RngCore`], [`SeedableRng`], [`Rng::gen`],
//! [`Rng::gen_range`] and [`seq::SliceRandom::shuffle`]. Algorithms follow
//! the upstream semantics (53-bit uniform floats, widening-multiply integer
//! ranges, Fisher–Yates shuffling) but make no bit-for-bit compatibility
//! promise with upstream `rand` — all determinism guarantees in this
//! repository are *internal* (same seed ⇒ same stream on every run).

/// A source of random 32/64-bit words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64 {
        (self.next_u32() as u64) << 32 | self.next_u32() as u64
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A deterministic RNG constructible from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Creates the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates the RNG from a 64-bit seed, expanding it with SplitMix64 the
    /// same way upstream `rand` does.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }
}

/// Types that `Rng::gen` can produce uniformly.
pub trait Standard: Sized {
    /// Samples one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1), as in rand's Standard.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}
impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
                   u64 => next_u64, usize => next_u64,
                   i32 => next_u32, i64 => next_u64);

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                // Widening multiply, Lemire-style: negligible bias for the
                // small spans used in this workspace.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end - start) as u64 + 1;
                if span == 0 {
                    return <$t>::sample_standard(rng); // full domain
                }
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                start + hi as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = f64::sample_standard(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// The user-facing sampling interface, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample of `T`'s standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform sample from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Sequence-related helpers (`SliceRandom`).

    use super::{Rng, RngCore};

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

/// Re-exports matching `rand::prelude`.
pub mod prelude {
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 so the counter looks random enough for range tests.
            self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn floats_are_in_unit_interval() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(3);
        for _ in 0..1000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(0.5f64..2.0);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Counter(11);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle should move something");
    }
}
