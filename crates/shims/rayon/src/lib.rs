//! Offline stand-in for the [`rayon`](https://crates.io/crates/rayon) crate.
//!
//! The build environment has no access to crates.io, so this local crate
//! implements the slice of the rayon API the workspace actually uses on top
//! of [`std::thread::scope`]: `par_iter` / `par_iter_mut().enumerate()` on
//! slices, `into_par_iter` on integer ranges, `map` / `for_each` / `sum` /
//! `collect`, and `ThreadPoolBuilder` → `ThreadPool::install`.
//!
//! Unlike real rayon there is no work-stealing: each adapter splits its input
//! into one contiguous chunk per thread. For the vertex-centric partitioning
//! drivers in this workspace (which already chunk their input themselves)
//! this matches the intended execution model.

use std::cell::Cell;
use std::ops::Range;

thread_local! {
    /// Thread count installed by [`ThreadPool::install`]; 0 = default.
    static INSTALLED_THREADS: Cell<usize> = const { Cell::new(0) };
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Effective parallelism for a workload of `len` items.
fn threads_for(len: usize) -> usize {
    let installed = INSTALLED_THREADS.with(|t| t.get());
    let t = if installed == 0 {
        default_threads()
    } else {
        installed
    };
    t.min(len).max(1)
}

// ---------------------------------------------------------------- thread pool

/// Error building a thread pool (never produced by this shim).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// New builder with the default thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of threads (0 = one per logical CPU).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A scoped "pool": it only records the requested width; parallel adapters
/// executed under [`ThreadPool::install`] split their work accordingly.
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's thread count installed as the ambient
    /// parallelism.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        let previous = INSTALLED_THREADS.with(|t| t.replace(self.num_threads));
        let result = op();
        INSTALLED_THREADS.with(|t| t.set(previous));
        result
    }

    /// The pool's configured thread count (0 = default).
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads == 0 {
            default_threads()
        } else {
            self.num_threads
        }
    }
}

// ------------------------------------------------------------------- helpers

fn par_chunks_for_each<T, F>(items: &[T], f: &F)
where
    T: Sync,
    F: Fn(&T) + Sync,
{
    let t = threads_for(items.len());
    if t <= 1 {
        items.iter().for_each(f);
        return;
    }
    let chunk = items.len().div_ceil(t);
    std::thread::scope(|s| {
        for part in items.chunks(chunk) {
            s.spawn(move || part.iter().for_each(f));
        }
    });
}

fn par_chunks_map<T, R, F>(items: &[T], f: &F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let t = threads_for(items.len());
    if t <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(t);
    let partials: Vec<Vec<R>> = std::thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|part| s.spawn(move || part.iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    });
    partials.into_iter().flatten().collect()
}

// -------------------------------------------------------------- shared slices

/// Parallel iterator over `&[T]`.
pub struct ParSlice<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParSlice<'a, T> {
    /// Parallel `map`; results keep the input order.
    pub fn map<R, F>(self, f: F) -> ParSliceMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParSliceMap {
            items: self.items,
            f,
        }
    }

    /// Parallel `for_each`.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Sync,
    {
        // The lifetime of the yielded references is tied to the slice, which
        // outlives the scoped threads.
        let t = threads_for(self.items.len());
        if t <= 1 {
            self.items.iter().for_each(&f);
            return;
        }
        let chunk = self.items.len().div_ceil(t);
        let f = &f;
        std::thread::scope(|s| {
            for part in self.items.chunks(chunk) {
                s.spawn(move || part.iter().for_each(f));
            }
        });
    }
}

/// Mapped parallel slice iterator.
pub struct ParSliceMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, R, F> ParSliceMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    /// Collects mapped results in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let t = threads_for(self.items.len());
        if t <= 1 {
            return self.items.iter().map(&self.f).collect();
        }
        let chunk = self.items.len().div_ceil(t);
        let f = &self.f;
        let partials: Vec<Vec<R>> = std::thread::scope(|s| {
            let handles: Vec<_> = self
                .items
                .chunks(chunk)
                .map(|part| s.spawn(move || part.iter().map(f).collect::<Vec<R>>()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("parallel worker panicked"))
                .collect()
        });
        partials.into_iter().flatten().collect()
    }

    /// Sums mapped results.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<R> + std::iter::Sum<S> + Send,
    {
        let t = threads_for(self.items.len());
        if t <= 1 {
            return self.items.iter().map(&self.f).sum();
        }
        let chunk = self.items.len().div_ceil(t);
        let f = &self.f;
        let partials: Vec<S> = std::thread::scope(|s| {
            let handles: Vec<_> = self
                .items
                .chunks(chunk)
                .map(|part| s.spawn(move || part.iter().map(f).sum::<S>()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("parallel worker panicked"))
                .collect()
        });
        partials.into_iter().sum()
    }
}

// ------------------------------------------------------------ mutable slices

/// Parallel iterator over `&mut [T]`.
pub struct ParSliceMut<'a, T> {
    items: &'a mut [T],
}

impl<'a, T: Send> ParSliceMut<'a, T> {
    /// Pairs every element with its index.
    pub fn enumerate(self) -> ParSliceMutEnumerate<'a, T> {
        ParSliceMutEnumerate { items: self.items }
    }

    /// Parallel mutable `for_each`.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a mut T) + Sync,
    {
        ParSliceMutEnumerate { items: self.items }.for_each(move |(_, item)| f(item));
    }
}

/// Enumerated parallel iterator over `&mut [T]`.
pub struct ParSliceMutEnumerate<'a, T> {
    items: &'a mut [T],
}

impl<'a, T: Send> ParSliceMutEnumerate<'a, T> {
    /// Parallel `for_each` over `(index, &mut item)` pairs.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &'a mut T)) + Sync,
    {
        let len = self.items.len();
        let t = threads_for(len);
        if t <= 1 {
            for (i, item) in self.items.iter_mut().enumerate() {
                f((i, item));
            }
            return;
        }
        let chunk = len.div_ceil(t);
        let f = &f;
        std::thread::scope(|s| {
            for (c, part) in self.items.chunks_mut(chunk).enumerate() {
                let base = c * chunk;
                s.spawn(move || {
                    for (i, item) in part.iter_mut().enumerate() {
                        f((base + i, item));
                    }
                });
            }
        });
    }
}

// ------------------------------------------------------------ integer ranges

/// Parallel iterator over an integer range.
pub struct ParRange<T> {
    range: Range<T>,
}

macro_rules! impl_par_range {
    ($($t:ty),*) => {$(
        impl ParRange<$t> {
            /// Parallel `map`; results keep the input order.
            pub fn map<R, F>(self, f: F) -> ParRangeMap<$t, F>
            where
                R: Send,
                F: Fn($t) -> R + Sync,
            {
                ParRangeMap { range: self.range, f }
            }

            /// Parallel `for_each`.
            pub fn for_each<F>(self, f: F)
            where
                F: Fn($t) + Sync,
            {
                let values: Vec<$t> = self.range.collect();
                par_chunks_for_each(&values, &|v: &$t| f(*v));
            }
        }

        impl IntoParallelIterator for Range<$t> {
            type Iter = ParRange<$t>;
            type Item = $t;
            fn into_par_iter(self) -> ParRange<$t> {
                ParRange { range: self }
            }
        }
    )*};
}

/// Mapped parallel range iterator.
pub struct ParRangeMap<T, F> {
    range: Range<T>,
    f: F,
}

macro_rules! impl_par_range_map {
    ($($t:ty),*) => {$(
        impl<R, F> ParRangeMap<$t, F>
        where
            R: Send,
            F: Fn($t) -> R + Sync,
        {
            /// Sums mapped results.
            pub fn sum<S>(self) -> S
            where
                S: std::iter::Sum<R> + std::iter::Sum<S> + Send,
            {
                let values: Vec<$t> = self.range.collect();
                let f = &self.f;
                let partials = par_chunks_map(&values, &|v: &$t| f(*v));
                // Partial results are already one R per item; sum them all.
                partials.into_iter().sum()
            }

            /// Collects mapped results in input order.
            pub fn collect<C: FromIterator<R>>(self) -> C {
                let values: Vec<$t> = self.range.collect();
                let f = &self.f;
                par_chunks_map(&values, &|v: &$t| f(*v)).into_iter().collect()
            }
        }
    )*};
}

impl_par_range!(u32, u64, usize);
impl_par_range_map!(u32, u64, usize);

// ---------------------------------------------------------------- the traits

/// Conversion into an owning parallel iterator (`into_par_iter`).
pub trait IntoParallelIterator {
    /// The parallel iterator type.
    type Iter;
    /// The yielded item type.
    type Item;
    /// Converts `self`.
    fn into_par_iter(self) -> Self::Iter;
}

/// `par_iter` on shared references.
pub trait IntoParallelRefIterator<'data> {
    /// The parallel iterator type.
    type Iter;
    /// Borrows `self` as a parallel iterator.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Iter = ParSlice<'data, T>;
    fn par_iter(&'data self) -> ParSlice<'data, T> {
        ParSlice { items: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Iter = ParSlice<'data, T>;
    fn par_iter(&'data self) -> ParSlice<'data, T> {
        ParSlice { items: self }
    }
}

/// `par_iter_mut` on mutable references.
pub trait IntoParallelRefMutIterator<'data> {
    /// The parallel iterator type.
    type Iter;
    /// Borrows `self` mutably as a parallel iterator.
    fn par_iter_mut(&'data mut self) -> Self::Iter;
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for [T] {
    type Iter = ParSliceMut<'data, T>;
    fn par_iter_mut(&'data mut self) -> ParSliceMut<'data, T> {
        ParSliceMut { items: self }
    }
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
    type Iter = ParSliceMut<'data, T>;
    fn par_iter_mut(&'data mut self) -> ParSliceMut<'data, T> {
        ParSliceMut { items: self }
    }
}

/// The traits a `use rayon::prelude::*;` is expected to bring in scope.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn slice_map_collect_preserves_order() {
        let input: Vec<u32> = (0..1000).collect();
        let doubled: Vec<u64> = input.par_iter().map(|&x| x as u64 * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x as u64 * 2).collect::<Vec<_>>());
    }

    #[test]
    fn range_map_sum_matches_sequential() {
        let par: u64 = (0u32..10_000).into_par_iter().map(|x| x as u64).sum();
        assert_eq!(par, (0u64..10_000).sum::<u64>());
    }

    #[test]
    fn for_each_visits_everything() {
        let counter = AtomicU64::new(0);
        let items: Vec<u64> = (1..=100).collect();
        items
            .par_iter()
            .for_each(|&x| void(counter.fetch_add(x, Ordering::Relaxed)));
        assert_eq!(counter.load(Ordering::Relaxed), 5050);
    }

    fn void<T>(_: T) {}

    #[test]
    fn par_iter_mut_enumerate_writes_indices() {
        let mut items = vec![0usize; 500];
        items
            .par_iter_mut()
            .enumerate()
            .for_each(|(i, slot)| *slot = i);
        assert_eq!(items, (0..500).collect::<Vec<_>>());
    }

    #[test]
    fn install_limits_ambient_threads() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        assert_eq!(pool.current_num_threads(), 2);
        let sum: u64 = pool.install(|| (0u32..100).into_par_iter().map(|x| x as u64).sum());
        assert_eq!(sum, 4950);
    }
}
