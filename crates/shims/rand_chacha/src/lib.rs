//! Offline stand-in for the [`rand_chacha`](https://crates.io/crates/rand_chacha) crate providing [`ChaCha8Rng`].
//!
//! The ChaCha8 block function itself is the real Bernstein construction
//! (8 rounds, 64-byte blocks, 64-bit block counter), so the stream has the
//! expected statistical quality; the word-level output order is not
//! guaranteed to match upstream `rand_chacha` bit for bit. Determinism in
//! this workspace is internal only: the same seed always produces the same
//! stream.

use rand::{RngCore, SeedableRng};

/// A ChaCha random number generator with 8 rounds.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Input block: constants, 8 key words, 64-bit counter, 2 nonce words.
    input: [u32; 16],
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word in `block`; 16 means "exhausted".
    index: usize,
}

const SIGMA: [u32; 4] = [0x61707865, 0x3320646e, 0x79622d32, 0x6b206574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.input;
        for _ in 0..4 {
            // One double round = column round + diagonal round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&mixed, &original)) in self
            .block
            .iter_mut()
            .zip(working.iter().zip(self.input.iter()))
        {
            *out = mixed.wrapping_add(original);
        }
        // 64-bit block counter in words 12..14.
        let counter = (self.input[12] as u64 | (self.input[13] as u64) << 32).wrapping_add(1);
        self.input[12] = counter as u32;
        self.input[13] = (counter >> 32) as u32;
        self.index = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.block[self.index];
        self.index += 1;
        word
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut input = [0u32; 16];
        input[..4].copy_from_slice(&SIGMA);
        for i in 0..8 {
            input[4 + i] = u32::from_le_bytes(seed[4 * i..4 * i + 4].try_into().unwrap());
        }
        // Counter and nonce start at zero.
        ChaCha8Rng {
            input,
            block: [0; 16],
            index: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(
            same < 4,
            "streams should be uncorrelated, {same} collisions"
        );
    }

    #[test]
    fn produces_reasonable_floats() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mean: f64 = (0..10_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn counter_advances_across_blocks() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let first_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first_block, second_block);
    }
}
