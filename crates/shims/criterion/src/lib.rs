//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no access to crates.io, so this local crate
//! provides the small API surface the workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`], [`BenchmarkId`], [`black_box`] and the
//! `criterion_group!` / `criterion_main!` macros. Instead of criterion's
//! statistical analysis it reports the mean, minimum and maximum wall time
//! over the configured sample count as a plain table.

use std::time::{Duration, Instant};

/// Prevents the compiler from optimising a value away.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of a parameterised benchmark (`name/parameter`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Creates an id from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Runs the measured closure repeatedly and records timings.
pub struct Bencher {
    samples: usize,
    warm_up: Duration,
    timings: Vec<Duration>,
}

impl Bencher {
    /// Times `f` over the configured number of samples.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up: run until the warm-up budget is exhausted (at least once).
        let start = Instant::now();
        while start.elapsed() < self.warm_up {
            black_box(f());
        }
        self.timings.clear();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            self.timings.push(t0.elapsed());
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: usize,
    warm_up: Duration,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; this harness measures a fixed number
    /// of samples rather than a time budget.
    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Sets the warm-up budget before sampling starts.
    pub fn warm_up_time(&mut self, time: Duration) -> &mut Self {
        self.warm_up = time;
        self
    }

    /// Accepted for API compatibility; throughput is not reported.
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Benchmarks `f` with an explicit input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: self.sample_size,
            warm_up: self.warm_up,
            timings: Vec::new(),
        };
        f(&mut bencher, input);
        self.report(&id.to_string(), &bencher.timings);
        self
    }

    /// Benchmarks a closure without an input parameter.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: self.sample_size,
            warm_up: self.warm_up,
            timings: Vec::new(),
        };
        f(&mut bencher);
        self.report(&id.to_string(), &bencher.timings);
        self
    }

    fn report(&mut self, id: &str, timings: &[Duration]) {
        if timings.is_empty() {
            println!("{:<40} (not measured)", format!("{}/{}", self.name, id));
            return;
        }
        let total: Duration = timings.iter().sum();
        let mean = total / timings.len() as u32;
        let min = timings.iter().min().unwrap();
        let max = timings.iter().max().unwrap();
        println!(
            "{:<44} mean {:>12.3?}  min {:>12.3?}  max {:>12.3?}  ({} samples)",
            format!("{}/{}", self.name, id),
            mean,
            min,
            max,
            timings.len()
        );
        self.criterion.benchmarks_run += 1;
    }

    /// Ends the group.
    pub fn finish(&mut self) {
        println!();
    }
}

/// Throughput hint (accepted, ignored).
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Minimal harness entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== {name} ==");
        BenchmarkGroup {
            name,
            criterion: self,
            sample_size: 10,
            warm_up: Duration::from_millis(300),
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group(id).bench_function("run", f);
        self
    }

    /// Accepted for API compatibility.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_and_reports() {
        let mut c = Criterion::default();
        {
            let mut group = c.benchmark_group("smoke");
            group.sample_size(3).warm_up_time(Duration::from_millis(1));
            group.bench_with_input(BenchmarkId::new("square", 7), &7u64, |b, &x| {
                b.iter(|| x * x)
            });
            group.finish();
        }
        assert_eq!(c.benchmarks_run, 1);
    }

    #[test]
    fn benchmark_id_formats_like_criterion() {
        assert_eq!(BenchmarkId::new("algo", 64).to_string(), "algo/64");
        assert_eq!(BenchmarkId::from_parameter(3).to_string(), "3");
    }
}
