//! Block-level communication graphs.
//!
//! Offline mapping algorithms first partition the processes into `k` blocks
//! and then assign the *blocks* to PEs. The input of that second step is the
//! communication matrix between blocks: `C_B[i][j]` = total weight of edges
//! running between block `i` and block `j`.

use oms_core::BlockId;
use oms_graph::CsrGraph;

/// A dense, symmetric `k × k` block communication matrix.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommGraph {
    k: usize,
    weights: Vec<u64>,
}

impl CommGraph {
    /// Builds the block communication matrix induced by `assignment` (one
    /// block id per node) on `graph`.
    pub fn from_partition(graph: &CsrGraph, assignment: &[BlockId], k: u32) -> Self {
        assert!(assignment.len() >= graph.num_nodes());
        let k = k as usize;
        let mut weights = vec![0u64; k * k];
        for (u, v, w) in graph.edges() {
            let bu = assignment[u as usize] as usize;
            let bv = assignment[v as usize] as usize;
            if bu != bv {
                weights[bu * k + bv] += w;
                weights[bv * k + bu] += w;
            }
        }
        CommGraph { k, weights }
    }

    /// Builds a communication matrix directly from entries (used in tests and
    /// by synthetic workloads). Entries are symmetrised.
    pub fn from_entries(k: usize, entries: &[(usize, usize, u64)]) -> Self {
        let mut weights = vec![0u64; k * k];
        for &(i, j, w) in entries {
            assert!(i < k && j < k && i != j);
            weights[i * k + j] += w;
            weights[j * k + i] += w;
        }
        CommGraph { k, weights }
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.k
    }

    /// Communication weight between blocks `i` and `j`.
    pub fn weight(&self, i: usize, j: usize) -> u64 {
        self.weights[i * self.k + j]
    }

    /// Total communication weight of block `i` towards all other blocks.
    pub fn total_weight_of(&self, i: usize) -> u64 {
        (0..self.k).map(|j| self.weight(i, j)).sum()
    }

    /// Sum of all pairwise communication weights (each pair counted once).
    pub fn total_weight(&self) -> u64 {
        self.weights.iter().sum::<u64>() / 2
    }

    /// The cost of mapping block `i` to PE `pe[i]` under the given topology:
    /// `Σ_{i<j} C_B[i][j] · D(pe[i], pe[j])`.
    pub fn mapping_cost(&self, pe_of_block: &[BlockId], topology: &crate::Topology) -> u64 {
        assert_eq!(pe_of_block.len(), self.k);
        let mut cost = 0u64;
        for i in 0..self.k {
            for j in (i + 1)..self.k {
                let w = self.weight(i, j);
                if w > 0 {
                    cost += w * topology.distance(pe_of_block[i], pe_of_block[j]);
                }
            }
        }
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Topology;

    #[test]
    fn from_partition_counts_cross_block_weight() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]).unwrap();
        let assignment = [0, 0, 1, 1, 2, 2];
        let cg = CommGraph::from_partition(&g, &assignment, 3);
        assert_eq!(cg.weight(0, 1), 1); // edge (1,2)
        assert_eq!(cg.weight(1, 2), 1); // edge (3,4)
        assert_eq!(cg.weight(0, 2), 1); // edge (5,0)
        assert_eq!(cg.weight(0, 0), 0);
        assert_eq!(cg.total_weight(), 3);
        assert_eq!(cg.total_weight_of(0), 2);
    }

    #[test]
    fn matrix_is_symmetric() {
        let g = oms_gen::erdos_renyi_gnm(100, 400, 3);
        let assignment: Vec<BlockId> = (0..100).map(|v| (v % 5) as BlockId).collect();
        let cg = CommGraph::from_partition(&g, &assignment, 5);
        for i in 0..5 {
            for j in 0..5 {
                assert_eq!(cg.weight(i, j), cg.weight(j, i));
            }
        }
    }

    #[test]
    fn from_entries_symmetrises() {
        let cg = CommGraph::from_entries(3, &[(0, 1, 5), (1, 2, 2)]);
        assert_eq!(cg.weight(1, 0), 5);
        assert_eq!(cg.weight(2, 1), 2);
        assert_eq!(cg.weight(0, 2), 0);
        assert_eq!(cg.num_blocks(), 3);
    }

    #[test]
    fn block_mapping_cost_matches_manual_computation() {
        let cg = CommGraph::from_entries(4, &[(0, 1, 10), (2, 3, 10), (0, 2, 1)]);
        let t = Topology::parse("2:2", "1:10").unwrap();
        // Blocks 0,1 on PEs 0,1 (distance 1); blocks 2,3 on PEs 2,3
        // (distance 1); blocks 0,2 on PEs 0,2 (distance 10).
        let cost = cg.mapping_cost(&[0, 1, 2, 3], &t);
        assert_eq!(cost, 10 + 10 + 10);
        // A bad mapping that separates the heavy pairs across the machine.
        let bad = cg.mapping_cost(&[0, 2, 1, 3], &t);
        assert!(bad > cost);
    }
}
