//! Hierarchical machine topologies.

use oms_core::{BlockId, DistanceSpec, HierarchySpec, PartitionError};

/// A hierarchical machine: `S = a1:…:aℓ` PEs with distances `D = d1:…:dℓ`.
///
/// The paper's default experimental setup is `S = 4:16:r`, `D = 1:10:100`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Topology {
    hierarchy: HierarchySpec,
    distances: DistanceSpec,
}

impl Topology {
    /// Combines a hierarchy and a distance specification.
    ///
    /// Fails if the distance specification has fewer levels than the
    /// hierarchy.
    pub fn new(hierarchy: HierarchySpec, distances: DistanceSpec) -> Result<Self, PartitionError> {
        if distances.num_levels() < hierarchy.num_levels() {
            return Err(PartitionError::InvalidSpec(format!(
                "distance spec has {} levels but the hierarchy has {}",
                distances.num_levels(),
                hierarchy.num_levels()
            )));
        }
        Ok(Topology {
            hierarchy,
            distances,
        })
    }

    /// Parses `"4:16:8"` + `"1:10:100"` style strings.
    pub fn parse(hierarchy: &str, distances: &str) -> Result<Self, PartitionError> {
        Topology::new(
            HierarchySpec::parse(hierarchy)?,
            DistanceSpec::parse(distances)?,
        )
    }

    /// The paper's default topology `S = 4:16:r`, `D = 1:10:100`.
    pub fn paper_default(r: u32) -> Self {
        let hierarchy = HierarchySpec::new(vec![4, 16, r.max(2)]).expect("valid hierarchy");
        Topology {
            hierarchy,
            distances: DistanceSpec::paper_default(),
        }
    }

    /// The hierarchy `S`.
    pub fn hierarchy(&self) -> &HierarchySpec {
        &self.hierarchy
    }

    /// The distances `D`.
    pub fn distances(&self) -> &DistanceSpec {
        &self.distances
    }

    /// Total number of PEs `k`.
    pub fn num_pes(&self) -> u32 {
        self.hierarchy.total_blocks()
    }

    /// Communication distance between two PEs.
    pub fn distance(&self, a: BlockId, b: BlockId) -> u64 {
        self.distances.distance(&self.hierarchy, a, b)
    }

    /// The full `k × k` distance matrix (row-major). Only sensible for small
    /// `k`; the streaming algorithms never materialise it.
    pub fn distance_matrix(&self) -> Vec<u64> {
        let k = self.num_pes();
        let mut matrix = vec![0u64; (k * k) as usize];
        for a in 0..k {
            for b in 0..k {
                matrix[(a * k + b) as usize] = self.distance(a, b);
            }
        }
        matrix
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_topology() {
        let t = Topology::paper_default(8);
        assert_eq!(t.num_pes(), 4 * 16 * 8);
        assert_eq!(t.distances().distances(), &[1, 10, 100]);
        assert_eq!(t.hierarchy().factors(), &[4, 16, 8]);
    }

    #[test]
    fn distance_levels() {
        let t = Topology::parse("2:2:2", "1:10:100").unwrap();
        assert_eq!(t.distance(0, 0), 0);
        assert_eq!(t.distance(0, 1), 1);
        assert_eq!(t.distance(0, 2), 10);
        assert_eq!(t.distance(0, 4), 100);
        assert_eq!(t.distance(7, 3), 100);
    }

    #[test]
    fn distance_matrix_is_symmetric_with_zero_diagonal() {
        let t = Topology::parse("2:3", "1:10").unwrap();
        let k = t.num_pes();
        let m = t.distance_matrix();
        for a in 0..k {
            assert_eq!(m[(a * k + a) as usize], 0);
            for b in 0..k {
                assert_eq!(m[(a * k + b) as usize], m[(b * k + a) as usize]);
            }
        }
    }

    #[test]
    fn mismatched_levels_are_rejected() {
        assert!(Topology::parse("2:2:2:2", "1:10:100").is_err());
        // More distance levels than hierarchy levels are fine (extra ignored).
        assert!(Topology::parse("2:2", "1:10:100").is_ok());
    }
}
