//! Offline block→PE mapping pipelines.
//!
//! The paper's internal-memory competitors (IntMap, and KaMinPar followed by
//! an identity mapping) work offline: they first compute a high-quality
//! `k`-way partition of the whole graph and then assign the blocks to PEs.
//! This module provides the second step so that any in-memory partitioner
//! (in this repository: `oms-multilevel`) can be turned into a process
//! mapper:
//!
//! 1. build the block communication matrix ([`crate::CommGraph`]),
//! 2. construct a mapping greedily ([`crate::greedy_mapping`]),
//! 3. refine it by pair-exchange ([`crate::pair_exchange`]).

use crate::comm_graph::CommGraph;
use crate::greedy::greedy_mapping;
use crate::local_search::{pair_exchange, PairExchangeConfig};
use crate::topology::Topology;
use oms_core::{BlockId, Partition};
use oms_graph::CsrGraph;

/// The identity block→PE mapping (block `i` on PE `i`), the mapping
/// implicitly used when a plain partitioner such as Fennel "ignores the
/// given hierarchy".
pub fn identity_mapping(k: u32) -> Vec<BlockId> {
    (0..k).collect()
}

/// Computes a block→PE mapping for an existing partition: greedy
/// construction followed by pair-exchange refinement.
///
/// Returns `pe_of_block` (length `k`).
pub fn offline_block_mapping(
    graph: &CsrGraph,
    partition: &Partition,
    topology: &Topology,
) -> Vec<BlockId> {
    let k = partition.num_blocks();
    let comm = CommGraph::from_partition(graph, partition.assignments(), k);
    let mut mapping = greedy_mapping(&comm, topology);
    // Restrict the quadratic pair-exchange on large k, mirroring the
    // search-space pruning of Brandfass et al.
    let window = if k > 256 { Some(64) } else { None };
    pair_exchange(
        &comm,
        topology,
        &mut mapping,
        PairExchangeConfig {
            max_rounds: 10,
            window,
        },
    );
    mapping
}

/// Applies a block→PE mapping to a partition, producing the PE-level
/// assignment of every node (the composition `Π = pe_of_block ∘ partition`).
pub fn remap_partition(partition: &Partition, pe_of_block: &[BlockId]) -> Vec<BlockId> {
    assert_eq!(pe_of_block.len(), partition.num_blocks() as usize);
    partition
        .assignments()
        .iter()
        .map(|&b| pe_of_block[b as usize])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::mapping_cost;
    use oms_core::{OnePassConfig, StreamingPartitioner};

    #[test]
    fn identity_mapping_is_the_identity() {
        assert_eq!(identity_mapping(4), vec![0, 1, 2, 3]);
    }

    #[test]
    fn remap_composes_assignments() {
        let p = Partition::from_assignments_unit(3, vec![0, 1, 2, 1]);
        let remapped = remap_partition(&p, &[2, 0, 1]);
        assert_eq!(remapped, vec![2, 0, 1, 0]);
    }

    #[test]
    fn offline_mapping_never_worse_than_identity() {
        // Partition a community graph with a plain streaming partitioner
        // (which ignores the hierarchy) and check that the offline block
        // mapping reduces — or at least does not increase — the mapping cost
        // relative to the identity mapping.
        let g = oms_gen::planted_partition(400, 16, 0.1, 0.01, 3);
        let t = Topology::parse("2:2:2:2", "1:10:100:1000").unwrap();
        let p = oms_core::Fennel::new(16, OnePassConfig::default())
            .partition_graph(&g)
            .unwrap();
        let identity_cost = mapping_cost(&g, p.assignments(), &t);
        let mapping = offline_block_mapping(&g, &p, &t);
        let remapped = remap_partition(&p, &mapping);
        let mapped_cost = mapping_cost(&g, &remapped, &t);
        assert!(
            mapped_cost <= identity_cost,
            "offline mapping {mapped_cost} must not exceed identity {identity_cost}"
        );
    }

    #[test]
    fn offline_mapping_is_a_permutation() {
        let g = oms_gen::planted_partition(200, 8, 0.15, 0.01, 7);
        let t = Topology::parse("2:2:2", "1:10:100").unwrap();
        let p = oms_core::Hashing::new(8, OnePassConfig::default())
            .partition_graph(&g)
            .unwrap();
        let mut mapping = offline_block_mapping(&g, &p, &t);
        mapping.sort_unstable();
        mapping.dedup();
        assert_eq!(mapping.len(), 8);
    }
}
