//! Greedy construction of block→PE mappings.
//!
//! This is the classic construction heuristic used by offline process-mapping
//! tools (Müller-Merbach's greedy ordering, refined by Glantz et al. as
//! GreedyAllC): repeatedly pick the unmapped block with the largest
//! communication volume towards already-mapped blocks and place it on the
//! free PE that minimises the incurred communication cost.

use crate::comm_graph::CommGraph;
use crate::topology::Topology;
use oms_core::BlockId;

/// Computes a one-to-one block→PE mapping greedily.
///
/// Returns `pe_of_block` with one PE per block.
///
/// # Panics
///
/// Panics if the communication graph has more blocks than the topology has
/// PEs.
pub fn greedy_mapping(comm: &CommGraph, topology: &Topology) -> Vec<BlockId> {
    let k = comm.num_blocks();
    let num_pes = topology.num_pes() as usize;
    assert!(
        k <= num_pes,
        "cannot map {k} blocks onto {num_pes} PEs one-to-one"
    );

    let mut pe_of_block: Vec<Option<BlockId>> = vec![None; k];
    let mut pe_used = vec![false; num_pes];
    let mut mapped: Vec<usize> = Vec::with_capacity(k);

    // Start with the block that has the largest total communication volume —
    // its placement constrains the solution the most.
    let first = (0..k).max_by_key(|&b| comm.total_weight_of(b)).unwrap_or(0);
    pe_of_block[first] = Some(0);
    pe_used[0] = true;
    mapped.push(first);

    for _ in 1..k {
        // Pick the unmapped block with the largest communication towards the
        // already-mapped blocks (ties: larger total volume, then smaller id).
        let next = (0..k)
            .filter(|&b| pe_of_block[b].is_none())
            .max_by_key(|&b| {
                let towards_mapped: u64 = mapped.iter().map(|&m| comm.weight(b, m)).sum();
                (
                    towards_mapped,
                    comm.total_weight_of(b),
                    std::cmp::Reverse(b),
                )
            })
            .expect("there is at least one unmapped block");

        // Place it on the free PE minimising the added cost.
        let mut best_pe = None;
        let mut best_cost = u64::MAX;
        for pe in 0..num_pes as BlockId {
            if pe_used[pe as usize] {
                continue;
            }
            let cost: u64 = mapped
                .iter()
                .map(|&m| comm.weight(next, m) * topology.distance(pe, pe_of_block[m].unwrap()))
                .sum();
            if cost < best_cost {
                best_cost = cost;
                best_pe = Some(pe);
            }
        }
        let pe = best_pe.expect("a free PE always exists while blocks remain");
        pe_of_block[next] = Some(pe);
        pe_used[pe as usize] = true;
        mapped.push(next);
    }

    pe_of_block.into_iter().map(|pe| pe.unwrap()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greedy_produces_a_permutation() {
        let comm = CommGraph::from_entries(8, &[(0, 1, 5), (2, 3, 4), (4, 5, 3), (6, 7, 2)]);
        let t = Topology::parse("2:2:2", "1:10:100").unwrap();
        let mapping = greedy_mapping(&comm, &t);
        let mut sorted = mapping.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 8, "mapping must be one-to-one");
    }

    #[test]
    fn heavily_communicating_blocks_land_close_together() {
        // Four blocks, one very heavy pair: the greedy mapper must put the
        // heavy pair on PEs sharing the lowest hierarchy level.
        let comm = CommGraph::from_entries(4, &[(0, 1, 100), (2, 3, 100), (0, 2, 1)]);
        let t = Topology::parse("2:2", "1:10").unwrap();
        let mapping = greedy_mapping(&comm, &t);
        assert_eq!(t.distance(mapping[0], mapping[1]), 1);
        assert_eq!(t.distance(mapping[2], mapping[3]), 1);
    }

    #[test]
    fn greedy_beats_identity_on_adversarial_input() {
        // Communication pattern deliberately at odds with the identity
        // mapping: block 0 talks to block 7, 1 to 6, etc.
        let comm = CommGraph::from_entries(8, &[(0, 7, 50), (1, 6, 50), (2, 5, 50), (3, 4, 50)]);
        let t = Topology::parse("2:2:2", "1:10:100").unwrap();
        let identity: Vec<BlockId> = (0..8).collect();
        let greedy = greedy_mapping(&comm, &t);
        assert!(comm.mapping_cost(&greedy, &t) < comm.mapping_cost(&identity, &t));
    }

    #[test]
    fn single_block_maps_to_pe_zero() {
        let comm = CommGraph::from_entries(1, &[]);
        let t = Topology::parse("2:2", "1:10").unwrap();
        assert_eq!(greedy_mapping(&comm, &t), vec![0]);
    }

    #[test]
    fn fewer_blocks_than_pes_is_allowed() {
        let comm = CommGraph::from_entries(3, &[(0, 1, 2), (1, 2, 3)]);
        let t = Topology::parse("2:2:2", "1:10:100").unwrap();
        let mapping = greedy_mapping(&comm, &t);
        assert_eq!(mapping.len(), 3);
        assert!(mapping.iter().all(|&pe| pe < 8));
    }

    #[test]
    #[should_panic]
    fn more_blocks_than_pes_panics() {
        let comm = CommGraph::from_entries(5, &[]);
        let t = Topology::parse("2:2", "1:10").unwrap();
        greedy_mapping(&comm, &t);
    }
}
