//! Evaluation of the process-mapping objective `J(C, D, Π)`.
//!
//! The communication matrix `C` is given as a graph (`GC` in the paper): each
//! edge `{u, v}` with weight `w` represents `C_{u,v} = C_{v,u} = w`. A
//! partition whose blocks are PEs therefore has cost
//! `J = Σ_{ {u,v} ∈ E } ω(u,v) · D(Π(u), Π(v))`
//! (each undirected edge counted once, consistent with the symmetric-matrix
//! convention of §2.1).

use crate::topology::Topology;
use oms_core::BlockId;
use oms_graph::CsrGraph;
use rayon::prelude::*;

/// Total communication cost `J` of assigning node `v` to PE
/// `assignment[v]`.
///
/// # Panics
///
/// Panics if `assignment` is shorter than the number of nodes.
pub fn mapping_cost(graph: &CsrGraph, assignment: &[BlockId], topology: &Topology) -> u64 {
    assert!(assignment.len() >= graph.num_nodes());
    graph
        .edges()
        .map(|(u, v, w)| w * topology.distance(assignment[u as usize], assignment[v as usize]))
        .sum()
}

/// Parallel evaluation of `J` (one rayon task per node, counting each edge
/// from its smaller endpoint).
pub fn mapping_cost_parallel(graph: &CsrGraph, assignment: &[BlockId], topology: &Topology) -> u64 {
    assert!(assignment.len() >= graph.num_nodes());
    (0..graph.num_nodes() as u32)
        .into_par_iter()
        .map(|u| {
            graph
                .neighbors_weighted(u)
                .filter(|&(v, _)| u < v)
                .map(|(v, w)| w * topology.distance(assignment[u as usize], assignment[v as usize]))
                .sum::<u64>()
        })
        .sum()
}

/// Communication volume broken down by hierarchy level.
///
/// Index 0 holds the edge weight between nodes on the *same* PE (cost 0),
/// index `i ≥ 1` the edge weight between PEs whose lowest shared level is
/// `i` (each weighted edge counted once, unscaled by the distance).
pub fn mapping_cost_per_level(
    graph: &CsrGraph,
    assignment: &[BlockId],
    topology: &Topology,
) -> Vec<u64> {
    assert!(assignment.len() >= graph.num_nodes());
    let levels = topology.hierarchy().num_levels();
    let mut volume = vec![0u64; levels + 1];
    for (u, v, w) in graph.edges() {
        let level = topology
            .hierarchy()
            .shared_level(assignment[u as usize], assignment[v as usize]);
        volume[level] += w;
    }
    volume
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square() -> CsrGraph {
        CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap()
    }

    #[test]
    fn cost_of_single_pe_mapping_is_zero() {
        let g = square();
        let t = Topology::parse("2:2", "1:10").unwrap();
        assert_eq!(mapping_cost(&g, &[0, 0, 0, 0], &t), 0);
    }

    #[test]
    fn cost_reflects_distance_levels() {
        let g = square();
        let t = Topology::parse("2:2", "1:10").unwrap();
        // Edges: (0,1) same processor (PEs 0,1 → d=1), (1,2) PEs 1,2 → d=10,
        // (2,3) PEs 2,3 → d=1, (3,0) PEs 3,0 → d=10.
        let cost = mapping_cost(&g, &[0, 1, 2, 3], &t);
        assert_eq!(cost, 1 + 10 + 1 + 10);
    }

    #[test]
    fn cost_respects_edge_weights() {
        let mut b = oms_graph::GraphBuilder::new(2);
        b.add_weighted_edge(0, 1, 7).unwrap();
        let g = b.build();
        let t = Topology::parse("2:2", "1:10").unwrap();
        assert_eq!(mapping_cost(&g, &[0, 2], &t), 70);
        assert_eq!(mapping_cost(&g, &[0, 1], &t), 7);
    }

    #[test]
    fn parallel_cost_matches_sequential() {
        let g = oms_gen::planted_partition(300, 8, 0.1, 0.01, 3);
        let t = Topology::parse("2:2:2", "1:10:100").unwrap();
        let assignment: Vec<BlockId> = (0..300).map(|v| (v % 8) as BlockId).collect();
        assert_eq!(
            mapping_cost(&g, &assignment, &t),
            mapping_cost_parallel(&g, &assignment, &t)
        );
    }

    #[test]
    fn per_level_volume_sums_to_total_edge_weight() {
        let g = oms_gen::erdos_renyi_gnm(200, 800, 5);
        let t = Topology::parse("2:2:2", "1:10:100").unwrap();
        let assignment: Vec<BlockId> = (0..200).map(|v| (v % 8) as BlockId).collect();
        let per_level = mapping_cost_per_level(&g, &assignment, &t);
        assert_eq!(per_level.len(), 4);
        assert_eq!(per_level.iter().sum::<u64>(), g.total_edge_weight());
    }

    #[test]
    fn per_level_volume_consistent_with_cost() {
        let g = square();
        let t = Topology::parse("2:2", "1:10").unwrap();
        let assignment = [0, 1, 2, 3];
        let per_level = mapping_cost_per_level(&g, &assignment, &t);
        let d = [0u64, 1, 10];
        let reconstructed: u64 = per_level
            .iter()
            .zip(d.iter())
            .map(|(&vol, &dist)| vol * dist)
            .sum();
        assert_eq!(reconstructed, mapping_cost(&g, &assignment, &t));
    }
}
