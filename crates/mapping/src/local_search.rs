//! Pair-exchange local search on block→PE mappings.
//!
//! The refinement step used by offline mapping tools (Heider's pair-exchange,
//! accelerated by Brandfass et al.): repeatedly swap the PEs of two blocks if
//! the swap reduces the mapping cost, until no improving swap exists or an
//! iteration budget is exhausted. Following Brandfass et al., the search can
//! be restricted to a window of consecutive blocks to bound the quadratic
//! cost on large `k`.

use crate::comm_graph::CommGraph;
use crate::topology::Topology;
use oms_core::BlockId;

/// Options of the pair-exchange refinement.
#[derive(Clone, Copy, Debug)]
pub struct PairExchangeConfig {
    /// Maximum number of full sweeps over all considered pairs.
    pub max_rounds: usize,
    /// If set, only pairs of blocks whose indices differ by at most this
    /// window are considered (Brandfass-style search-space pruning);
    /// `None` considers all pairs.
    pub window: Option<usize>,
}

impl Default for PairExchangeConfig {
    fn default() -> Self {
        PairExchangeConfig {
            max_rounds: 10,
            window: None,
        }
    }
}

/// Cost delta of swapping the PEs of blocks `a` and `b`.
fn swap_gain(
    comm: &CommGraph,
    topology: &Topology,
    pe_of_block: &[BlockId],
    a: usize,
    b: usize,
) -> i64 {
    let k = comm.num_blocks();
    let pa = pe_of_block[a];
    let pb = pe_of_block[b];
    if pa == pb {
        return 0;
    }
    let mut before = 0i64;
    let mut after = 0i64;
    #[allow(clippy::needless_range_loop)] // c indexes both pe_of_block and comm
    for c in 0..k {
        if c == a || c == b {
            continue;
        }
        let pc = pe_of_block[c];
        let wac = comm.weight(a, c);
        let wbc = comm.weight(b, c);
        if wac > 0 {
            before += (wac * topology.distance(pa, pc)) as i64;
            after += (wac * topology.distance(pb, pc)) as i64;
        }
        if wbc > 0 {
            before += (wbc * topology.distance(pb, pc)) as i64;
            after += (wbc * topology.distance(pa, pc)) as i64;
        }
    }
    // The a-b edge itself keeps its cost (distance is symmetric).
    before - after
}

/// Improves `pe_of_block` in place by pair-exchange; returns the total cost
/// improvement achieved.
pub fn pair_exchange(
    comm: &CommGraph,
    topology: &Topology,
    pe_of_block: &mut [BlockId],
    config: PairExchangeConfig,
) -> u64 {
    let k = comm.num_blocks();
    assert_eq!(pe_of_block.len(), k);
    let mut total_gain = 0u64;
    for _ in 0..config.max_rounds {
        let mut improved = false;
        for a in 0..k {
            let hi = match config.window {
                Some(w) => (a + w + 1).min(k),
                None => k,
            };
            for b in (a + 1)..hi {
                let gain = swap_gain(comm, topology, pe_of_block, a, b);
                if gain > 0 {
                    pe_of_block.swap(a, b);
                    total_gain += gain as u64;
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }
    total_gain
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::greedy_mapping;

    #[test]
    fn local_search_fixes_an_adversarial_identity_mapping() {
        let comm = CommGraph::from_entries(4, &[(0, 3, 100), (1, 2, 100)]);
        let t = Topology::parse("2:2", "1:10").unwrap();
        let mut mapping: Vec<BlockId> = (0..4).collect();
        let before = comm.mapping_cost(&mapping, &t);
        let gain = pair_exchange(&comm, &t, &mut mapping, PairExchangeConfig::default());
        let after = comm.mapping_cost(&mapping, &t);
        assert_eq!(before - after, gain);
        assert!(after < before);
        // The heavy pairs must now sit on PEs at distance 1.
        assert_eq!(t.distance(mapping[0], mapping[3]), 1);
        assert_eq!(t.distance(mapping[1], mapping[2]), 1);
    }

    #[test]
    fn local_search_never_worsens_greedy() {
        let comm = CommGraph::from_entries(
            8,
            &[
                (0, 1, 9),
                (0, 2, 7),
                (1, 3, 6),
                (4, 5, 8),
                (5, 6, 4),
                (6, 7, 5),
                (3, 4, 2),
            ],
        );
        let t = Topology::parse("2:2:2", "1:10:100").unwrap();
        let mut mapping = greedy_mapping(&comm, &t);
        let before = comm.mapping_cost(&mapping, &t);
        pair_exchange(&comm, &t, &mut mapping, PairExchangeConfig::default());
        let after = comm.mapping_cost(&mapping, &t);
        assert!(after <= before);
        // The result must still be a permutation.
        let mut sorted = mapping.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 8);
    }

    #[test]
    fn gain_is_consistent_with_cost_delta() {
        let comm = CommGraph::from_entries(4, &[(0, 1, 3), (1, 2, 5), (2, 3, 2), (0, 3, 4)]);
        let t = Topology::parse("2:2", "1:10").unwrap();
        let mapping: Vec<BlockId> = vec![0, 1, 2, 3];
        for a in 0..4 {
            for b in (a + 1)..4 {
                let mut swapped = mapping.clone();
                swapped.swap(a, b);
                let expected =
                    comm.mapping_cost(&mapping, &t) as i64 - comm.mapping_cost(&swapped, &t) as i64;
                assert_eq!(
                    swap_gain(&comm, &t, &mapping, a, b),
                    expected,
                    "swap {a},{b}"
                );
            }
        }
    }

    #[test]
    fn windowed_search_is_a_restriction_of_full_search() {
        let comm = CommGraph::from_entries(6, &[(0, 5, 50), (1, 4, 20), (2, 3, 10)]);
        let t = Topology::parse("2:3", "1:10").unwrap();
        let mut full: Vec<BlockId> = (0..6).collect();
        let mut windowed: Vec<BlockId> = (0..6).collect();
        pair_exchange(&comm, &t, &mut full, PairExchangeConfig::default());
        pair_exchange(
            &comm,
            &t,
            &mut windowed,
            PairExchangeConfig {
                max_rounds: 10,
                window: Some(1),
            },
        );
        assert!(comm.mapping_cost(&full, &t) <= comm.mapping_cost(&windowed, &t));
    }

    #[test]
    fn zero_rounds_changes_nothing() {
        let comm = CommGraph::from_entries(4, &[(0, 3, 100)]);
        let t = Topology::parse("2:2", "1:10").unwrap();
        let mut mapping: Vec<BlockId> = (0..4).collect();
        let gain = pair_exchange(
            &comm,
            &t,
            &mut mapping,
            PairExchangeConfig {
                max_rounds: 0,
                window: None,
            },
        );
        assert_eq!(gain, 0);
        assert_eq!(mapping, vec![0, 1, 2, 3]);
    }
}
