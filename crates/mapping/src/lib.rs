//! # oms-mapping
//!
//! Process-mapping support for the OMS reproduction.
//!
//! Process mapping assigns the `n` processes of a communication graph to the
//! `k` PEs of a hierarchically organised parallel machine while minimising
//! the total communication cost
//! `J(C, D, Π) = Σ_{i,j} C_{i,j} · D_{Π(i),Π(j)}` (§2.1 of the paper).
//!
//! This crate provides:
//!
//! * [`Topology`] — a hierarchical machine model combining a
//!   [`oms_core::HierarchySpec`] and a [`oms_core::DistanceSpec`];
//! * [`cost`] — evaluation of `J` (sequential and parallel) and per-level
//!   communication statistics;
//! * [`comm_graph`] — the block-level communication matrix induced by a
//!   partition, the input of every block→PE mapping algorithm;
//! * [`greedy`] — the greedy construction heuristic in the spirit of
//!   Müller-Merbach / GreedyAllC used by offline mapping tools;
//! * [`local_search`] — pair-exchange refinement (Brandfass et al.) of a
//!   block→PE mapping;
//! * [`offline`] — an offline mapping pipeline (greedy construction +
//!   local search) used to build the "IntMap"-like internal-memory baseline
//!   of the evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod comm_graph;
pub mod cost;
pub mod greedy;
pub mod local_search;
pub mod offline;
pub mod topology;

pub use comm_graph::CommGraph;
pub use cost::{mapping_cost, mapping_cost_parallel, mapping_cost_per_level};
pub use greedy::greedy_mapping;
pub use local_search::pair_exchange;
pub use offline::{identity_mapping, offline_block_mapping, remap_partition};
pub use topology::Topology;
