//! # oms-dynamic
//!
//! Dynamic-graph partition maintenance: a long-lived service layer that
//! keeps a streaming partition valid while the graph changes underneath it.
//!
//! The streaming partitioners of `oms-core` answer "partition this graph
//! once"; this crate answers "*keep* it partitioned". A
//! [`PartitionState`] runs a registered repair-capable algorithm (`fennel`
//! or `ldg`, see the `supports_repair` flag of
//! [`AlgorithmInfo`](oms_core::AlgorithmInfo)) once over the initial graph,
//! then ingests [`DeltaBatch`](oms_graph::DeltaBatch)es of edge/node
//! insertions and deletions:
//!
//! * the [`DynamicGraph`] absorbs each mutation and streams the live graph
//!   on demand (it implements [`NodeStream`](oms_graph::NodeStream));
//! * per-block loads, the boundary set and the edge cut are maintained
//!   incrementally, and touched nodes are re-scored in place (ReFennel
//!   steps under the live `L_max`) per the job's `repair=` policy;
//! * a drift metric triggers a seeded full-restream fallback through the
//!   multi-pass engine once the job's `drift=` threshold is exceeded;
//! * snapshots persist the whole service state as a v2-compatible trailer
//!   of the stream file, and [`PartitionState::resume`] restores it
//!   byte-identically from the trailer plus the delta trace.
//!
//! ```
//! use oms_core::JobSpec;
//! use oms_dynamic::PartitionState;
//! use oms_graph::{CsrGraph, DeltaBatch, InMemoryStream};
//!
//! let graph = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]).unwrap();
//! let job: JobSpec = "fennel:2@drift=0.5".parse().unwrap();
//! let mut state = PartitionState::new(&job, &mut InMemoryStream::new(&graph)).unwrap();
//!
//! let mut batch = DeltaBatch::new();
//! batch.insert_edge(2, 3, 1);   // bridge the two paths
//! batch.delete_edge(0, 1);
//! let stats = state.apply(&batch).unwrap();
//! assert_eq!(stats.deltas, 2);
//! assert_eq!(state.assignments().len(), 6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checkpoints;
mod graph;
mod state;

pub use checkpoints::{Checkpoints, WindowStats};
pub use graph::DynamicGraph;
pub use state::{ApplyStats, PartitionState, TraceCursor};

#[cfg(test)]
mod tests {
    use super::*;
    use oms_core::{measure_pass, JobSpec, RepairPolicy, UNASSIGNED};
    use oms_gen::erdos_renyi_gnm;
    use oms_graph::io::{write_stream_file, DiskStream};
    use oms_graph::{CsrGraph, DeltaBatch, InMemoryStream};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn er_graph(n: usize, seed: u64) -> CsrGraph {
        erdos_renyi_gnm(n, n * 4, seed)
    }

    fn job(k: u32) -> JobSpec {
        JobSpec::flat("fennel", k)
    }

    fn state_over(n: usize, k: u32, seed: u64) -> PartitionState {
        let graph = er_graph(n, seed);
        PartitionState::new(&job(k), &mut InMemoryStream::new(&graph)).unwrap()
    }

    /// The maintained cut must equal a from-scratch metric pass at all
    /// times — this is the invariant everything else (drift, fallback,
    /// snapshots) is built on.
    fn assert_cut_consistent(state: &mut PartitionState) {
        let maintained = state.edge_cut();
        let k = state.num_blocks();
        let assignments = state.assignments().to_vec();
        let (measured, _) = measure_pass(state.graph_stream(), &assignments, k).unwrap();
        assert_eq!(maintained, measured, "maintained cut diverged");
    }

    /// A random but always-valid churn batch over the live graph.
    fn random_batch(state: &PartitionState, rng: &mut ChaCha8Rng, ops: usize) -> DeltaBatch {
        let mut batch = DeltaBatch::new();
        let mut graph = state.graph().clone();
        for _ in 0..ops {
            let alive: Vec<u32> = (0..graph.id_space() as u32)
                .filter(|&v| graph.is_alive(v))
                .collect();
            match rng.gen_range(0..10u32) {
                0 => {
                    // node insert at a fresh id
                    let id = graph.id_space() as u32;
                    graph.insert_node(id, 1 + rng.gen_range(0..3u64)).unwrap();
                    batch.insert_node(id, graph.node_weight(id));
                }
                1 if alive.len() > 4 => {
                    let v = alive[rng.gen_range(0..alive.len())];
                    graph.delete_node(v).unwrap();
                    batch.delete_node(v);
                }
                2 | 3 if graph.num_live_edges() > 0 => {
                    // delete a random existing edge
                    let with_edges: Vec<u32> = alive
                        .iter()
                        .copied()
                        .filter(|&v| graph.degree(v) > 0)
                        .collect();
                    let u = with_edges[rng.gen_range(0..with_edges.len())];
                    let (nbrs, _) = graph.neighbors(u);
                    let v = nbrs[rng.gen_range(0..nbrs.len())];
                    graph.delete_edge(u, v).unwrap();
                    batch.delete_edge(u, v);
                }
                _ => {
                    // insert a random absent edge
                    for _ in 0..32 {
                        let u = alive[rng.gen_range(0..alive.len())];
                        let v = alive[rng.gen_range(0..alive.len())];
                        if u != v && !graph.has_edge(u, v) {
                            graph.insert_edge(u, v, 1).unwrap();
                            batch.insert_edge(u, v, 1);
                            break;
                        }
                    }
                }
            }
        }
        batch
    }

    #[test]
    fn initial_run_matches_restream_quality_invariants() {
        let mut state = state_over(200, 4, 7);
        assert!(state.edge_cut() > 0);
        assert!(!state.trajectory().is_empty());
        assert_eq!(state.counters().baseline_cut, state.edge_cut());
        assert!(state.boundary_size() > 0);
        assert_cut_consistent(&mut state);
        // Every live node is assigned, dead ids do not exist yet.
        assert!(state.assignments().iter().all(|&b| b != UNASSIGNED));
    }

    #[test]
    fn non_repairable_algorithms_are_rejected() {
        let graph = er_graph(50, 1);
        for spec in ["hashing:4", "oms:2:2", "nh-oms:4"] {
            let job: JobSpec = spec.parse().unwrap();
            let err = PartitionState::new(&job, &mut InMemoryStream::new(&graph)).unwrap_err();
            let msg = err.to_string();
            assert!(msg.contains("repair"), "unexpected error: {msg}");
        }
    }

    #[test]
    fn incremental_cut_stays_exact_under_churn() {
        for policy in [
            RepairPolicy::Off,
            RepairPolicy::Local,
            RepairPolicy::Boundary,
        ] {
            let graph = er_graph(150, 11);
            let mut spec = job(4);
            spec.repair = policy;
            spec.drift = 1e9; // never fall back: stress the incremental path
            let mut state = PartitionState::new(&spec, &mut InMemoryStream::new(&graph)).unwrap();
            let mut rng = ChaCha8Rng::seed_from_u64(42);
            for _ in 0..8 {
                let batch = random_batch(&state, &mut rng, 40);
                state.apply(&batch).unwrap();
                assert_cut_consistent(&mut state);
            }
        }
    }

    #[test]
    fn boundary_set_stays_exact_under_churn() {
        let graph = er_graph(120, 5);
        let mut state = PartitionState::new(&job(3), &mut InMemoryStream::new(&graph)).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..6 {
            let batch = random_batch(&state, &mut rng, 30);
            state.apply(&batch).unwrap();
            let expected: usize = (0..state.graph().id_space() as u32)
                .filter(|&v| {
                    state.graph().is_alive(v) && {
                        let b = state.assignments()[v as usize];
                        let (nbrs, _) = state.graph().neighbors(v);
                        nbrs.iter().any(|&u| state.assignments()[u as usize] != b)
                    }
                })
                .count();
            assert_eq!(state.boundary_size(), expected);
        }
    }

    #[test]
    fn drift_threshold_triggers_full_restream() {
        let graph = er_graph(150, 3);
        let mut spec = job(4);
        spec.drift = 1e-6; // any movement at all must trip the fallback
        let mut state = PartitionState::new(&spec, &mut InMemoryStream::new(&graph)).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut restreams = 0;
        for _ in 0..4 {
            let batch = random_batch(&state, &mut rng, 25);
            restreams += state.apply(&batch).unwrap().restreams;
        }
        assert!(restreams > 0, "fallback never triggered");
        assert_eq!(state.counters().restreams, restreams as u64);
        assert_cut_consistent(&mut state);
    }

    #[test]
    fn inconsistent_deltas_are_typed_errors() {
        let mut state = state_over(50, 2, 2);

        let mut dup = DeltaBatch::new();
        let (nbrs, _) = state.graph().neighbors(0);
        let existing = nbrs.first().copied();
        if let Some(v) = existing {
            dup.insert_edge(0, v, 1);
            assert!(state.apply(&dup).is_err());
        }
        let mut missing = DeltaBatch::new();
        missing.delete_edge(0, 0);
        assert!(state.apply(&missing).is_err());

        let mut dead = DeltaBatch::new();
        dead.delete_node(49);
        state.apply(&dead).unwrap();
        let mut again = DeltaBatch::new();
        again.delete_node(49);
        assert!(state.apply(&again).is_err());

        // The maintained state is still sound after the failures.
        assert_cut_consistent(&mut state);
    }

    #[test]
    fn snapshot_resume_is_byte_identical() {
        let dir = std::env::temp_dir().join("oms-dynamic-test-resume");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("service.oms");
        let graph = er_graph(180, 13);
        write_stream_file(&graph, &path).unwrap();

        let spec = job(4);
        let mut rng = ChaCha8Rng::seed_from_u64(77);

        // Reference service: never interrupted.
        let mut reference = PartitionState::new(&spec, &mut InMemoryStream::new(&graph)).unwrap();
        let mut trace: Vec<DeltaBatch> = Vec::new();
        for _ in 0..3 {
            let batch = random_batch(&reference, &mut rng, 30);
            reference.apply(&batch).unwrap();
            trace.push(batch);
        }

        // Interrupted service: replay the first two batches, snapshot,
        // "crash", resume from disk, apply the rest.
        let mut stream = DiskStream::open(&path).unwrap();
        let mut service = PartitionState::new(&spec, &mut stream).unwrap();
        service.apply(&trace[0]).unwrap();
        service.apply(&trace[1]).unwrap();
        service.save(&stream).unwrap();
        drop(service);

        let mut stream = DiskStream::open(&path).unwrap();
        let (mut resumed, cursor) = PartitionState::resume(&spec, &mut stream, &trace).unwrap();
        assert_eq!(cursor, TraceCursor { batch: 2, op: 0 });
        for batch in &trace[cursor.batch..] {
            resumed.apply(batch).unwrap();
        }

        assert_eq!(resumed.assignments(), reference.assignments());
        assert_eq!(resumed.edge_cut(), reference.edge_cut());
        assert_eq!(resumed.counters(), reference.counters());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_with_wrong_trace_is_rejected() {
        let dir = std::env::temp_dir().join("oms-dynamic-test-badtrace");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("service.oms");
        let graph = er_graph(80, 21);
        write_stream_file(&graph, &path).unwrap();

        let spec = job(2);
        let mut stream = DiskStream::open(&path).unwrap();
        let mut service = PartitionState::new(&spec, &mut stream).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let batch = random_batch(&service, &mut rng, 20);
        service.apply(&batch).unwrap();
        service.save(&stream).unwrap();
        drop(service);

        let mut stream = DiskStream::open(&path).unwrap();
        // Too-short trace: fewer ops than the snapshot recorded.
        let err = PartitionState::resume(&spec, &mut stream, &[]).unwrap_err();
        assert!(err.to_string().contains("trace"), "{err}");
        // No snapshot at all.
        oms_graph::io::clear_snapshot(&stream).unwrap();
        let mut stream = DiskStream::open(&path).unwrap();
        let err = PartitionState::resume(&spec, &mut stream, &[batch]).unwrap_err();
        assert!(err.to_string().contains("snapshot"), "{err}");
        std::fs::remove_file(&path).ok();
    }
}
