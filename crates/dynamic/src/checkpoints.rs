//! Checkpoint cadence and sliding-window trace driving.
//!
//! Every consumer of a delta trace — the quality suites, the CLI's
//! `apply-deltas`, the benches — needs the same answer to "after which
//! batches do I take a quality checkpoint?". [`Checkpoints`] is that
//! single answer: a cadence of `window` batches with the final batch
//! always checkpointing, so a trace whose length is not a multiple of the
//! cadence still ends on a measured state.
//!
//! [`PartitionState::drive_windows`] builds on it: ingest a whole trace
//! under the job's `window=` knob and return one [`WindowStats`] row per
//! checkpoint — the quality-over-time curve of the maintained partition.

use crate::PartitionState;
use oms_core::Result;
use oms_graph::DeltaBatch;

/// A checkpoint cadence over a delta trace: batch `i` (0-based) is a
/// checkpoint when `i + 1` is a multiple of the cadence, and the final
/// batch of a trace always checkpoints.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Checkpoints {
    cadence: usize,
}

impl Checkpoints {
    /// A cadence of one checkpoint every `cadence` batches (clamped to
    /// ≥ 1).
    pub fn every(cadence: usize) -> Self {
        Checkpoints {
            cadence: cadence.max(1),
        }
    }

    /// The cadence in batches.
    pub fn cadence(&self) -> usize {
        self.cadence
    }

    /// Whether batch `index` (0-based) of a trace of `len` batches is a
    /// checkpoint.
    pub fn is_checkpoint(&self, index: usize, len: usize) -> bool {
        index + 1 == len || (index + 1).is_multiple_of(self.cadence)
    }

    /// Number of checkpoints a trace of `len` batches produces.
    pub fn count(&self, len: usize) -> usize {
        self.positions(len).len()
    }

    /// The 0-based batch indices that checkpoint, in order.
    pub fn positions(&self, len: usize) -> Vec<usize> {
        (0..len).filter(|&i| self.is_checkpoint(i, len)).collect()
    }
}

/// One row of a quality-over-time curve: the maintained partition measured
/// at a sliding-window checkpoint.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WindowStats {
    /// Checkpoint number (0-based, dense).
    pub checkpoint: usize,
    /// 0-based index of the trace batch this checkpoint measured after.
    pub batch_index: usize,
    /// Deltas ingested since the previous checkpoint.
    pub deltas: usize,
    /// Maintained edge cut at the checkpoint.
    pub edge_cut: u64,
    /// Maintained imbalance at the checkpoint.
    pub imbalance: f64,
    /// Wall-clock seconds spent ingesting this window's batches.
    pub seconds: f64,
    /// Drift metric at the checkpoint.
    pub drift: f64,
}

impl PartitionState {
    /// Ingests `trace` batch by batch under the job's `window=` cadence
    /// and returns one [`WindowStats`] per checkpoint — the partition's
    /// quality-over-time curve. The final batch always checkpoints; an
    /// empty trace produces no rows.
    pub fn drive_windows(&mut self, trace: &[DeltaBatch]) -> Result<Vec<WindowStats>> {
        let checkpoints = Checkpoints::every(self.job().window);
        let mut curve = Vec::with_capacity(checkpoints.count(trace.len()));
        let mut window_deltas = 0usize;
        let mut window_seconds = 0.0f64;
        for (i, batch) in trace.iter().enumerate() {
            let stats = self.apply(batch)?;
            window_deltas += stats.deltas;
            window_seconds += stats.seconds;
            if checkpoints.is_checkpoint(i, trace.len()) {
                oms_obs::observe(oms_obs::Event::WindowClosed {
                    checkpoint: curve.len() as u64,
                    batch: i as u64,
                    deltas: window_deltas as u64,
                    edge_cut: self.edge_cut(),
                });
                curve.push(WindowStats {
                    checkpoint: curve.len(),
                    batch_index: i,
                    deltas: window_deltas,
                    edge_cut: self.edge_cut(),
                    imbalance: self.imbalance(),
                    seconds: window_seconds,
                    drift: self.drift(),
                });
                window_deltas = 0;
                window_seconds = 0.0;
            }
        }
        Ok(curve)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn final_batch_always_checkpoints() {
        // Regression: a trace whose length is not a multiple of the
        // cadence must still checkpoint its last batch.
        let c = Checkpoints::every(3);
        assert_eq!(c.positions(7), vec![2, 5, 6]);
        assert_eq!(c.count(7), 3);
        assert!(c.is_checkpoint(6, 7));
        assert!(!c.is_checkpoint(3, 7));
    }

    #[test]
    fn cadence_one_checkpoints_every_batch() {
        let c = Checkpoints::every(1);
        assert_eq!(c.positions(4), vec![0, 1, 2, 3]);
    }

    #[test]
    fn zero_cadence_is_clamped() {
        assert_eq!(Checkpoints::every(0), Checkpoints::every(1));
        assert_eq!(Checkpoints::every(0).cadence(), 1);
    }

    #[test]
    fn exact_multiple_has_no_duplicate_final() {
        let c = Checkpoints::every(2);
        assert_eq!(c.positions(6), vec![1, 3, 5]);
        assert_eq!(c.count(6), 3);
    }

    #[test]
    fn empty_trace_has_no_checkpoints() {
        assert_eq!(Checkpoints::every(3).positions(0), Vec::<usize>::new());
        assert_eq!(Checkpoints::every(3).count(0), 0);
    }

    #[test]
    fn drive_windows_matches_manual_loop() {
        use oms_core::JobSpec;
        use oms_gen::{churn_trace, erdos_renyi_gnm, ChurnConfig};
        use oms_graph::InMemoryStream;

        let graph = erdos_renyi_gnm(120, 480, 3);
        let trace = churn_trace(
            &graph,
            &ChurnConfig {
                batches: 7,
                ..ChurnConfig::default()
            },
        );
        let job: JobSpec = "fennel:4@window=3".parse().unwrap();

        let mut windowed = PartitionState::new(&job, &mut InMemoryStream::new(&graph)).unwrap();
        let curve = windowed.drive_windows(&trace).unwrap();

        let mut manual = PartitionState::new(&job, &mut InMemoryStream::new(&graph)).unwrap();
        let mut cuts = Vec::new();
        let checkpoints = Checkpoints::every(3);
        for (i, batch) in trace.iter().enumerate() {
            manual.apply(batch).unwrap();
            if checkpoints.is_checkpoint(i, trace.len()) {
                cuts.push((i, manual.edge_cut(), manual.imbalance()));
            }
        }

        assert_eq!(curve.len(), 3);
        assert_eq!(
            curve
                .iter()
                .map(|w| (w.batch_index, w.edge_cut, w.imbalance))
                .collect::<Vec<_>>(),
            cuts
        );
        assert_eq!(
            curve.iter().map(|w| w.deltas).sum::<usize>(),
            trace.iter().map(DeltaBatch::len).sum::<usize>()
        );
        assert_eq!(curve.last().unwrap().batch_index, trace.len() - 1);
    }
}
