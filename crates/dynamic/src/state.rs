//! The long-lived partition maintenance service.
//!
//! [`PartitionState`] wraps a repair-capable streaming algorithm
//! ([`RepairSink`]) around a [`DynamicGraph`] and keeps the partition valid
//! as [`DeltaBatch`]es arrive:
//!
//! * every delta mutates the graph and the per-block loads, and the edge cut
//!   is maintained incrementally (no metric pass per delta);
//! * under [`RepairPolicy::Local`] the nodes a delta touches are re-scored
//!   in place (one ReFennel step each, under the live balance constraint
//!   `L_max`); [`RepairPolicy::Boundary`] adds one cascade wave over the
//!   boundary neighbors of every node that changed blocks;
//! * a *drift* metric — cumulative moved node mass plus cut regression
//!   since the last full pass — triggers a full restream fallback through
//!   the multi-pass engine once it exceeds the job's `drift=` threshold.
//!   The fallback is seeded with the maintained assignment, so the engine's
//!   revert guard ensures it never returns something worse;
//! * [`PartitionState::save`] persists assignments, trajectory and drift
//!   counters as a trailer of the service's stream file, and
//!   [`PartitionState::resume`] restores a byte-identical service state
//!   from the trailer plus the delta trace.
//!
//! All repair decisions are deterministic (the flat scorers use no RNG), so
//! a resumed service continues exactly as the uninterrupted one would —
//! the property the `dynamic_quality` suite asserts byte for byte.

use crate::DynamicGraph;
use oms_core::{
    find_algorithm, measure_pass, BatchExecutor, BlockId, FlatObjective, JobSpec, PartitionError,
    PassStats, RepairPolicy, RepairSink, RestreamOptions, Result, UNASSIGNED,
};
use oms_graph::io::{
    read_snapshot, write_snapshot, DiskStream, DriftCounters, PartitionSnapshot, SnapshotPass,
};
use oms_graph::{Delta, DeltaBatch, NodeId, NodeStream, NodeWeight};
use oms_obs::{CounterId, Event, HistId, Stopwatch};

/// Bookkeeping of one [`PartitionState::apply`] call.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ApplyStats {
    /// Deltas applied.
    pub deltas: usize,
    /// Local re-scoring steps performed (including ones that kept the
    /// node's block).
    pub rescored: usize,
    /// Re-scored nodes that changed blocks.
    pub moved: usize,
    /// Full restream fallbacks triggered.
    pub restreams: usize,
    /// Wall-clock seconds of the whole call.
    pub seconds: f64,
}

/// Position in a delta trace (a slice of [`DeltaBatch`]es) where processing
/// should continue after [`PartitionState::resume`]: `batch` indexes the
/// slice (equal to its length when the trace was fully consumed), `op` the
/// operation within that batch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceCursor {
    /// Index of the first unapplied batch.
    pub batch: usize,
    /// Index of the first unapplied operation within that batch.
    pub op: usize,
}

/// A maintained partition: the dynamic graph, the repair sink and the drift
/// bookkeeping. See the [crate docs](crate).
pub struct PartitionState {
    job: JobSpec,
    graph: DynamicGraph,
    sink: RepairSink,
    policy: RepairPolicy,
    cut: u64,
    counters: DriftCounters,
    trajectory: Vec<PassStats>,
    boundary: Vec<bool>,
    boundary_count: usize,
}

impl std::fmt::Debug for PartitionState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PartitionState")
            .field("algorithm", &self.job.algorithm)
            .field("num_blocks", &self.sink.num_blocks())
            .field("live_nodes", &self.graph.num_live_nodes())
            .field("live_edges", &self.graph.num_live_edges())
            .field("edge_cut", &self.cut)
            .field("drift", &self.drift())
            .finish_non_exhaustive()
    }
}

impl PartitionState {
    /// Resolves `job` to a repair-capable flat objective, or explains why
    /// the algorithm cannot be maintained incrementally.
    fn repair_objective(job: &JobSpec) -> Result<(FlatObjective, u32)> {
        let info = find_algorithm(&job.algorithm).ok_or_else(|| {
            PartitionError::InvalidSpec(format!("unknown algorithm '{}'", job.algorithm))
        })?;
        let objective = if info.supports_repair {
            FlatObjective::for_algorithm(info.name)
        } else {
            None
        };
        let Some(objective) = objective else {
            return Err(PartitionError::InvalidConfig(format!(
                "algorithm '{}' does not support incremental repair (see `oms algorithms` \
                 for the ones that do)",
                info.name
            )));
        };
        if !job.drift.is_finite() || job.drift <= 0.0 {
            return Err(PartitionError::InvalidConfig(
                "drift must be positive".into(),
            ));
        }
        Ok((objective, job.num_blocks()))
    }

    /// Brings up the service: materialises `stream`, runs the initial
    /// (re)streaming passes of `job`'s algorithm, and records the resulting
    /// cut as the drift baseline.
    pub fn new(job: &JobSpec, stream: &mut dyn NodeStream) -> Result<Self> {
        let (objective, k) = Self::repair_objective(job)?;
        let mut graph = DynamicGraph::from_stream(stream)?;
        let mut sink = RepairSink::new(
            k,
            graph.id_space(),
            graph.num_live_edges(),
            graph.live_weight(),
            job.one_pass_config(),
            objective,
        )?;
        let opts = RestreamOptions::tracked(job.passes, job.convergence);
        let trajectory = BatchExecutor::default().run_restream(&mut graph, &mut sink, &opts)?;
        let cut = trajectory.final_edge_cut().unwrap_or(0);
        let mut state = PartitionState {
            job: job.clone(),
            policy: job.repair,
            graph,
            sink,
            cut,
            counters: DriftCounters {
                baseline_cut: cut,
                current_cut: cut,
                ..DriftCounters::default()
            },
            trajectory: trajectory.stats,
            boundary: Vec::new(),
            boundary_count: 0,
        };
        state.rebuild_boundary();
        Ok(state)
    }

    // ------------------------------------------------------------ accessors

    /// The job this service maintains.
    pub fn job(&self) -> &JobSpec {
        &self.job
    }

    /// The live graph.
    pub fn graph(&self) -> &DynamicGraph {
        &self.graph
    }

    /// Mutable access to the live graph *as a stream* — for running
    /// reference partitioners over the current state. Mutating the graph
    /// directly would desynchronise the maintained partition; apply deltas
    /// through [`PartitionState::apply`] instead.
    pub fn graph_stream(&mut self) -> &mut DynamicGraph {
        &mut self.graph
    }

    /// The maintained edge cut.
    pub fn edge_cut(&self) -> u64 {
        self.cut
    }

    /// The maintained imbalance `max_i c(V_i)/(c(V)/k) − 1`.
    pub fn imbalance(&self) -> f64 {
        let total = self.graph.live_weight();
        if total == 0 {
            return 0.0;
        }
        let avg = total as f64 / self.sink.num_blocks() as f64;
        let max = self.sink.block_weights().iter().copied().max().unwrap_or(0);
        max as f64 / avg - 1.0
    }

    /// The maintained assignment, one entry per id-space slot
    /// ([`UNASSIGNED`] for dead ids).
    pub fn assignments(&self) -> &[BlockId] {
        self.sink.assignments()
    }

    /// Current per-block loads.
    pub fn block_weights(&self) -> &[NodeWeight] {
        self.sink.block_weights()
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> u32 {
        self.sink.num_blocks()
    }

    /// Number of live boundary nodes (nodes with a neighbor in another
    /// block) — the candidate set of cascade repair.
    pub fn boundary_size(&self) -> usize {
        self.boundary_count
    }

    /// The drift counters (cumulative, as persisted in snapshots).
    pub fn counters(&self) -> DriftCounters {
        DriftCounters {
            current_cut: self.cut,
            ..self.counters
        }
    }

    /// Concatenated pass trajectory of the initial run and every restream
    /// fallback so far.
    pub fn trajectory(&self) -> &[PassStats] {
        &self.trajectory
    }

    /// The drift of the maintained partition since its last full pass:
    /// moved node mass (as a fraction of the live weight) plus relative cut
    /// regression. [`PartitionState::apply`] falls back to a full restream
    /// once this exceeds the job's `drift=` threshold.
    pub fn drift(&self) -> f64 {
        let total = self.graph.live_weight();
        let moved = if total == 0 {
            0.0
        } else {
            self.counters.moved_weight as f64 / total as f64
        };
        let regression = if self.counters.baseline_cut == 0 {
            if self.cut > 0 {
                f64::INFINITY
            } else {
                0.0
            }
        } else {
            (self.cut as f64 / self.counters.baseline_cut as f64 - 1.0).max(0.0)
        };
        moved + regression
    }

    // -------------------------------------------------------------- ingest

    /// Applies every delta of `batch`: graph mutation, incremental cut and
    /// load maintenance, local repair per the job's `repair=` policy, and —
    /// checked after every delta — the drift-triggered full-restream
    /// fallback.
    ///
    /// Fails with a typed error (and stops at the offending delta) when the
    /// batch is inconsistent with the graph: duplicate edge inserts,
    /// deletes of absent edges, references to dead nodes.
    pub fn apply(&mut self, batch: &DeltaBatch) -> Result<ApplyStats> {
        self.apply_from(batch, 0)
    }

    /// [`PartitionState::apply`] starting at operation `start` of `batch` —
    /// for continuing a batch that was partially applied before a snapshot
    /// (see [`TraceCursor`]).
    pub fn apply_from(&mut self, batch: &DeltaBatch, start: usize) -> Result<ApplyStats> {
        let clock = Stopwatch::start();
        let mut stats = ApplyStats::default();
        for i in start..batch.len() {
            self.apply_delta(batch.get(i), &mut stats)?;
            self.counters.deltas_applied += 1;
            stats.deltas += 1;
            if self.drift() > self.job.drift {
                self.full_restream()?;
                stats.restreams += 1;
            }
        }
        self.counters.current_cut = self.cut;
        stats.seconds = clock.seconds();
        self.sink.flush_hot_counters();
        oms_obs::observe(Event::DeltaBatchApplied {
            deltas: stats.deltas as u64,
            rescored: stats.rescored as u64,
            moved: stats.moved as u64,
            restreams: stats.restreams as u64,
            edge_cut: self.cut,
        });
        oms_obs::counter_add(CounterId::DeltasApplied, stats.deltas as u64);
        oms_obs::counter_add(CounterId::RepairRescored, stats.rescored as u64);
        oms_obs::counter_add(CounterId::RepairMoves, stats.moved as u64);
        oms_obs::hist_record(HistId::DeltaBatchDeltas, stats.deltas as u64);
        Ok(stats)
    }

    fn apply_delta(&mut self, delta: Delta, stats: &mut ApplyStats) -> Result<()> {
        match delta {
            Delta::EdgeInsert { u, v, w } => {
                self.graph.insert_edge(u, v, w)?;
                if self.sink.assignment(u) != self.sink.assignment(v) {
                    self.cut += w;
                }
                self.retune();
                self.refresh_boundary(u);
                self.refresh_boundary(v);
                if self.policy != RepairPolicy::Off {
                    self.repair(&[u, v], stats);
                }
            }
            Delta::EdgeDelete { u, v } => {
                let w = self.graph.delete_edge(u, v)?;
                if self.sink.assignment(u) != self.sink.assignment(v) {
                    self.cut -= w;
                }
                self.retune();
                self.refresh_boundary(u);
                self.refresh_boundary(v);
                if self.policy != RepairPolicy::Off {
                    self.repair(&[u, v], stats);
                }
            }
            Delta::NodeInsert { node, weight } => {
                self.graph.insert_node(node, weight)?;
                self.sink.grow(self.graph.id_space());
                self.boundary.resize(self.graph.id_space(), false);
                self.sink.admit(node, weight);
                self.retune();
                // A new node must be placed even under `repair=off` — an
                // unassigned live node would leave the partition invalid.
                self.rescore_node(node, stats);
            }
            Delta::NodeDelete { node } => {
                if !self.graph.is_alive(node) {
                    // Delegate for the typed error; nothing was mutated.
                    self.graph.delete_node(node)?;
                    unreachable!("delete_node accepted a dead node");
                }
                let block = self.sink.assignment(node);
                let weight = self.graph.node_weight(node);
                let removed = self.graph.delete_node(node)?;
                for &(nbr, w) in &removed {
                    if self.sink.assignment(nbr) != block {
                        self.cut -= w;
                    }
                }
                self.sink.forget(node, weight);
                self.retune();
                self.refresh_boundary(node);
                let targets: Vec<NodeId> = removed.iter().map(|&(nbr, _)| nbr).collect();
                for &nbr in &targets {
                    self.refresh_boundary(nbr);
                }
                if self.policy != RepairPolicy::Off {
                    self.repair(&targets, stats);
                }
            }
        }
        Ok(())
    }

    /// Re-derives `L_max` and the Fennel `α` from the live counts.
    fn retune(&mut self) {
        self.sink.retune(
            self.graph.num_live_nodes().max(1),
            self.graph.num_live_edges(),
            self.graph.live_weight(),
        );
    }

    /// Weight of `v`'s incident edges that cross out of block `b`.
    fn cross_weight(&self, v: NodeId, b: BlockId) -> u64 {
        let (nbrs, wts) = self.graph.neighbors(v);
        nbrs.iter()
            .zip(wts)
            .filter(|&(&u, _)| b == UNASSIGNED || self.sink.assignment(u) != b)
            .map(|(_, &w)| w)
            .sum()
    }

    /// One ReFennel step on `v`: unassign, re-score under the live `L_max`,
    /// and fold the (possible) move into cut, drift and boundary state.
    /// Returns whether `v` changed blocks.
    fn rescore_node(&mut self, v: NodeId, stats: &mut ApplyStats) -> bool {
        if !self.graph.is_alive(v) {
            return false;
        }
        let old = self.sink.assignment(v);
        let new = self.sink.rescore(self.graph.streamed(v));
        stats.rescored += 1;
        if new == old {
            return false;
        }
        // Neighbor assignments are untouched by v's move, so the cut shifts
        // by exactly v's cross-weight difference.
        let before = self.cross_weight(v, old);
        let after = self.cross_weight(v, new);
        self.cut = self.cut - before + after;
        stats.moved += 1;
        self.counters.moved_weight += self.graph.node_weight(v);
        self.refresh_boundary(v);
        let nbrs: Vec<NodeId> = self.graph.neighbors(v).0.to_vec();
        for u in nbrs {
            self.refresh_boundary(u);
        }
        true
    }

    /// Local repair: one ReFennel step per seed; under
    /// [`RepairPolicy::Boundary`], boundary neighbors of every moved seed
    /// form one deterministic cascade wave.
    fn repair(&mut self, seeds: &[NodeId], stats: &mut ApplyStats) {
        let mut wave: Vec<NodeId> = Vec::new();
        for &v in seeds {
            let moved = self.rescore_node(v, stats);
            if moved && self.policy == RepairPolicy::Boundary {
                wave.extend_from_slice(self.graph.neighbors(v).0);
            }
        }
        wave.sort_unstable();
        wave.dedup();
        for u in wave {
            if self.boundary.get(u as usize).copied().unwrap_or(false) {
                self.rescore_node(u, stats);
            }
        }
    }

    // ------------------------------------------------------------ boundary

    fn compute_boundary(&self, v: NodeId) -> bool {
        if !self.graph.is_alive(v) {
            return false;
        }
        let b = self.sink.assignment(v);
        let (nbrs, _) = self.graph.neighbors(v);
        nbrs.iter().any(|&u| self.sink.assignment(u) != b)
    }

    fn refresh_boundary(&mut self, v: NodeId) {
        let now = self.compute_boundary(v);
        let slot = &mut self.boundary[v as usize];
        if now != *slot {
            *slot = now;
            if now {
                self.boundary_count += 1;
            } else {
                self.boundary_count -= 1;
            }
        }
    }

    fn rebuild_boundary(&mut self) {
        self.boundary = vec![false; self.graph.id_space()];
        self.boundary_count = 0;
        for v in 0..self.graph.id_space() {
            let flag = self.compute_boundary(v as NodeId);
            self.boundary[v] = flag;
            self.boundary_count += flag as usize;
        }
    }

    // ------------------------------------------------------------ fallback

    /// The full-restream fallback: up to the job's `passes` seeded
    /// restreaming passes over the live graph, guarded so the result is
    /// never worse than the maintained assignment. Resets the drift
    /// baseline. Called automatically by [`PartitionState::apply`]; public
    /// so a service can force a full pass (e.g. before a planned shutdown).
    pub fn full_restream(&mut self) -> Result<()> {
        let baseline: Vec<BlockId> = self.sink.assignments().to_vec();
        // The seed is the partition this service maintains: its cut and
        // imbalance are already tracked delta by delta, so hand them to the
        // engine instead of paying a second full metric walk (debug builds
        // re-measure and assert agreement).
        let opts = RestreamOptions::tracked(self.job.passes, self.job.convergence)
            .with_seed_stats(self.cut, self.imbalance());
        let trajectory = BatchExecutor::default().run_restream_seeded(
            &mut self.graph,
            &mut self.sink,
            &opts,
            Some(&baseline),
        )?;
        self.cut = trajectory.final_edge_cut().unwrap_or(self.cut);
        self.trajectory.extend(trajectory.stats);
        self.counters.restreams += 1;
        self.counters.moved_weight = 0;
        self.counters.baseline_cut = self.cut;
        self.counters.current_cut = self.cut;
        self.rebuild_boundary();
        oms_obs::observe(Event::DriftFallback {
            restreams: self.counters.restreams,
            edge_cut: self.cut,
        });
        oms_obs::counter_add(CounterId::DriftFallbacks, 1);
        Ok(())
    }

    /// A cold reference solution for the *current* graph: a fresh sink of
    /// the same algorithm, streamed from scratch with the job's pass
    /// budget. Returns `(edge_cut, imbalance, seconds)`. This is the
    /// quality yardstick incremental maintenance is compared against (and
    /// the cost yardstick: its time is what a restream-per-checkpoint
    /// strategy would pay).
    pub fn cold_restream_reference(&mut self) -> Result<(u64, f64, f64)> {
        let (objective, k) = Self::repair_objective(&self.job)?;
        let mut sink = RepairSink::new(
            k,
            self.graph.id_space(),
            self.graph.num_live_edges(),
            self.graph.live_weight(),
            self.job.one_pass_config(),
            objective,
        )?;
        let opts = RestreamOptions::tracked(self.job.passes, self.job.convergence);
        let clock = Stopwatch::start();
        let trajectory =
            BatchExecutor::default().run_restream(&mut self.graph, &mut sink, &opts)?;
        let seconds = clock.seconds();
        let last = trajectory.stats.last().copied().unwrap_or(PassStats {
            pass: 0,
            edge_cut: 0,
            imbalance: 0.0,
            moved: 0,
            seconds: 0.0,
        });
        Ok((last.edge_cut, last.imbalance, seconds))
    }

    // ------------------------------------------------------------ snapshot

    /// The current service state as a [`PartitionSnapshot`].
    pub fn snapshot(&self) -> PartitionSnapshot {
        PartitionSnapshot {
            num_blocks: self.sink.num_blocks(),
            assignments: self.sink.assignments().to_vec(),
            counters: self.counters(),
            trajectory: self
                .trajectory
                .iter()
                .map(|s| SnapshotPass {
                    pass: s.pass as u32,
                    edge_cut: s.edge_cut,
                    imbalance: s.imbalance,
                    moved: s.moved as u64,
                    seconds: s.seconds,
                })
                .collect(),
        }
    }

    /// Persists the service state as a trailer of its stream file (see
    /// [`oms_graph::io::write_snapshot`]).
    pub fn save(&self, stream: &DiskStream) -> Result<()> {
        write_snapshot(stream, &self.snapshot())?;
        oms_obs::observe(Event::SnapshotWritten {
            deltas_applied: self.counters.deltas_applied,
            edge_cut: self.cut,
        });
        oms_obs::counter_add(CounterId::SnapshotsWritten, 1);
        Ok(())
    }

    /// Restores a service from `stream`'s snapshot trailer plus the delta
    /// trace it had been fed: the base graph is re-materialised, the first
    /// `deltas_applied` trace operations are replayed as pure graph
    /// mutations (assignments come from the snapshot), and the maintained
    /// cut is re-measured as a consistency check. Returns the state and the
    /// [`TraceCursor`] where ingest should continue.
    ///
    /// Because repair is deterministic, the resumed service is
    /// byte-identical to one that never stopped.
    pub fn resume(
        job: &JobSpec,
        stream: &mut DiskStream,
        trace: &[DeltaBatch],
    ) -> Result<(Self, TraceCursor)> {
        let (objective, k) = Self::repair_objective(job)?;
        let snap = read_snapshot(stream)?.ok_or_else(|| {
            PartitionError::InvalidConfig(
                "stream file carries no snapshot trailer to resume from".into(),
            )
        })?;
        if snap.num_blocks != k {
            return Err(PartitionError::InvalidConfig(format!(
                "snapshot was taken for k={} but the job asks for k={k}",
                snap.num_blocks
            )));
        }
        let mut graph = DynamicGraph::from_stream(stream)?;
        let mut remaining = snap.counters.deltas_applied;
        let mut cursor = TraceCursor {
            batch: trace.len(),
            op: 0,
        };
        'outer: for (bi, batch) in trace.iter().enumerate() {
            for op in 0..batch.len() {
                if remaining == 0 {
                    cursor = TraceCursor { batch: bi, op };
                    break 'outer;
                }
                Self::replay_delta(&mut graph, batch.get(op))?;
                remaining -= 1;
            }
        }
        if remaining > 0 {
            return Err(PartitionError::InvalidConfig(format!(
                "snapshot records {} applied deltas but the trace holds only {}",
                snap.counters.deltas_applied,
                snap.counters.deltas_applied - remaining
            )));
        }
        if snap.assignments.len() != graph.id_space() {
            return Err(PartitionError::InvalidConfig(format!(
                "snapshot covers {} ids but the replayed trace produces {} — \
                 snapshot and trace disagree",
                snap.assignments.len(),
                graph.id_space()
            )));
        }
        let mut weights: Vec<NodeWeight> = Vec::with_capacity(graph.id_space());
        for v in 0..graph.id_space() {
            let v = v as NodeId;
            let assigned = snap.assignments[v as usize] != UNASSIGNED;
            if assigned != graph.is_alive(v) {
                return Err(PartitionError::InvalidConfig(format!(
                    "node {v} is {} in the replayed graph but {} in the snapshot",
                    if graph.is_alive(v) { "alive" } else { "dead" },
                    if assigned { "assigned" } else { "unassigned" },
                )));
            }
            weights.push(graph.node_weight(v));
        }
        let mut sink = RepairSink::new(
            k,
            graph.id_space(),
            graph.num_live_edges(),
            graph.live_weight(),
            job.one_pass_config(),
            objective,
        )?;
        sink.seed(&snap.assignments, &weights);
        let trajectory = snap
            .trajectory
            .iter()
            .map(|s| PassStats {
                pass: s.pass as usize,
                edge_cut: s.edge_cut,
                imbalance: s.imbalance,
                moved: s.moved as usize,
                seconds: s.seconds,
            })
            .collect();
        let mut state = PartitionState {
            job: job.clone(),
            policy: job.repair,
            graph,
            sink,
            cut: snap.counters.current_cut,
            counters: snap.counters,
            trajectory,
            boundary: Vec::new(),
            boundary_count: 0,
        };
        state.retune();
        state.rebuild_boundary();
        let (measured, _) = measure_pass(&mut state.graph, state.sink.assignments(), k)?;
        if measured != state.cut {
            return Err(PartitionError::InvalidConfig(format!(
                "snapshot cut {} does not match the replayed graph (measured {measured}) — \
                 the trace is not the one the snapshot was taken under",
                state.cut
            )));
        }
        oms_obs::observe(Event::SnapshotResumed {
            deltas_applied: state.counters.deltas_applied,
            edge_cut: state.cut,
        });
        oms_obs::counter_add(CounterId::SnapshotsResumed, 1);
        Ok((state, cursor))
    }

    /// Replays one delta as a pure graph mutation (resume path: the
    /// partition state comes from the snapshot, not from repair).
    fn replay_delta(graph: &mut DynamicGraph, delta: Delta) -> Result<()> {
        match delta {
            Delta::EdgeInsert { u, v, w } => graph.insert_edge(u, v, w)?,
            Delta::EdgeDelete { u, v } => {
                graph.delete_edge(u, v)?;
            }
            Delta::NodeInsert { node, weight } => graph.insert_node(node, weight)?,
            Delta::NodeDelete { node } => {
                graph.delete_node(node)?;
            }
        }
        Ok(())
    }
}
