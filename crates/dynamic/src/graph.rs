//! The mutable adjacency structure behind a maintained partition.
//!
//! [`DynamicGraph`] is an adjacency-list graph that absorbs
//! [`Delta`](oms_graph::Delta)s: edges and nodes come and go, the id space
//! only ever grows (a deleted node's id stays allocated but *dead*), and the
//! live counts `n`, `m` and `c(V)` are maintained incrementally. It
//! implements [`NodeStream`] over the live nodes, so the restreaming engine
//! of `oms-core` — and any registered streaming algorithm — can run over the
//! current graph state at any time.
//!
//! Conventions:
//!
//! * [`NodeStream::num_nodes`] reports the *id-space* size (the length every
//!   assignment array must have), while only live nodes are streamed. Dead
//!   ids therefore keep the sentinel assignment and, per
//!   [`measure_pass`](oms_core::measure_pass)'s contract, never contribute
//!   to cut or balance because no live node is adjacent to them.
//! * Every mutation validates its preconditions and fails with a typed
//!   [`GraphError`] — a delta stream that inserts an existing edge or
//!   touches a dead node is corrupt and must not be half-applied.

use oms_graph::{
    CsrGraph, EdgeWeight, GraphError, NodeId, NodeStream, NodeWeight, Result, StreamedNode,
};

/// A mutable graph under churn: adjacency lists plus live/dead marks.
///
/// See the [crate docs](crate) for the id-space conventions.
#[derive(Clone, Debug, Default)]
pub struct DynamicGraph {
    nbrs: Vec<Vec<NodeId>>,
    wts: Vec<Vec<EdgeWeight>>,
    node_weights: Vec<NodeWeight>,
    alive: Vec<bool>,
    live_nodes: usize,
    live_edges: usize,
    total_weight: NodeWeight,
}

fn invalid(msg: impl Into<String>) -> GraphError {
    GraphError::Invalid(msg.into())
}

impl DynamicGraph {
    /// An empty graph.
    pub fn new() -> Self {
        DynamicGraph::default()
    }

    /// Materialises the current state of `stream` (one full pass). Every
    /// streamed node starts live.
    pub fn from_stream(stream: &mut dyn NodeStream) -> Result<Self> {
        let n = stream.num_nodes();
        let mut g = DynamicGraph {
            nbrs: vec![Vec::new(); n],
            wts: vec![Vec::new(); n],
            node_weights: vec![0; n],
            alive: vec![true; n],
            live_nodes: n,
            live_edges: stream.num_edges(),
            total_weight: stream.total_node_weight(),
        };
        stream.reset()?;
        stream.for_each_node(&mut |node| {
            let v = node.node as usize;
            g.node_weights[v] = node.weight;
            g.nbrs[v] = node.neighbors.to_vec();
            g.wts[v] = node.edge_weights.to_vec();
        })?;
        Ok(g)
    }

    /// Materialises a [`CsrGraph`].
    pub fn from_graph(graph: &CsrGraph) -> Self {
        let mut stream = oms_graph::InMemoryStream::new(graph);
        DynamicGraph::from_stream(&mut stream).expect("in-memory streams cannot fail")
    }

    /// Size of the id space (live and dead ids). Assignment arrays over this
    /// graph must have exactly this length.
    pub fn id_space(&self) -> usize {
        self.nbrs.len()
    }

    /// Number of live nodes.
    pub fn num_live_nodes(&self) -> usize {
        self.live_nodes
    }

    /// Number of live undirected edges.
    pub fn num_live_edges(&self) -> usize {
        self.live_edges
    }

    /// Total weight of the live nodes.
    pub fn live_weight(&self) -> NodeWeight {
        self.total_weight
    }

    /// Whether `v` is inside the id space and live.
    pub fn is_alive(&self, v: NodeId) -> bool {
        self.alive.get(v as usize).copied().unwrap_or(false)
    }

    /// Weight of node `v` (0 for dead ids).
    pub fn node_weight(&self, v: NodeId) -> NodeWeight {
        self.node_weights.get(v as usize).copied().unwrap_or(0)
    }

    /// Degree of node `v`.
    pub fn degree(&self, v: NodeId) -> usize {
        self.nbrs.get(v as usize).map_or(0, Vec::len)
    }

    /// Adjacency of `v`: neighbor ids and the aligned edge weights.
    pub fn neighbors(&self, v: NodeId) -> (&[NodeId], &[EdgeWeight]) {
        (&self.nbrs[v as usize], &self.wts[v as usize])
    }

    /// The [`StreamedNode`] view of live node `v`.
    pub fn streamed(&self, v: NodeId) -> StreamedNode<'_> {
        StreamedNode {
            node: v,
            weight: self.node_weights[v as usize],
            neighbors: &self.nbrs[v as usize],
            edge_weights: &self.wts[v as usize],
        }
    }

    /// Whether the live edge `{u, v}` exists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.nbrs
            .get(u as usize)
            .is_some_and(|list| list.contains(&v))
    }

    fn require_alive(&self, v: NodeId) -> Result<()> {
        if !self.is_alive(v) {
            return Err(invalid(format!(
                "node {v} is not alive (id space {})",
                self.id_space()
            )));
        }
        Ok(())
    }

    /// Inserts the undirected edge `{u, v}` with weight `w`.
    ///
    /// Fails on self-loops, zero weights, dead endpoints and duplicate
    /// edges.
    pub fn insert_edge(&mut self, u: NodeId, v: NodeId, w: EdgeWeight) -> Result<()> {
        if u == v {
            return Err(invalid(format!("self-loop insert on node {u}")));
        }
        if w == 0 {
            return Err(invalid(format!("zero-weight edge {u}-{v}")));
        }
        self.require_alive(u)?;
        self.require_alive(v)?;
        if self.has_edge(u, v) {
            return Err(invalid(format!("edge {u}-{v} already exists")));
        }
        self.nbrs[u as usize].push(v);
        self.wts[u as usize].push(w);
        self.nbrs[v as usize].push(u);
        self.wts[v as usize].push(w);
        self.live_edges += 1;
        Ok(())
    }

    fn detach(&mut self, from: NodeId, to: NodeId) -> Option<EdgeWeight> {
        let list = &mut self.nbrs[from as usize];
        let pos = list.iter().position(|&x| x == to)?;
        list.swap_remove(pos);
        Some(self.wts[from as usize].swap_remove(pos))
    }

    /// Deletes the undirected edge `{u, v}`, returning its weight.
    pub fn delete_edge(&mut self, u: NodeId, v: NodeId) -> Result<EdgeWeight> {
        self.require_alive(u)?;
        self.require_alive(v)?;
        let Some(w) = self.detach(u, v) else {
            return Err(invalid(format!("edge {u}-{v} does not exist")));
        };
        self.detach(v, u)
            .expect("adjacency lists out of sync (edge present on one side only)");
        self.live_edges -= 1;
        Ok(w)
    }

    /// Inserts node `id` with `weight`, growing the id space if needed.
    /// Ids skipped by the growth stay dead. Re-inserting a previously
    /// deleted id revives it as a fresh isolated node.
    pub fn insert_node(&mut self, id: NodeId, weight: NodeWeight) -> Result<()> {
        if weight == 0 {
            return Err(invalid(format!("zero-weight node {id}")));
        }
        let slot = id as usize;
        if slot < self.alive.len() && self.alive[slot] {
            return Err(invalid(format!("node {id} is already alive")));
        }
        if slot >= self.alive.len() {
            self.nbrs.resize_with(slot + 1, Vec::new);
            self.wts.resize_with(slot + 1, Vec::new);
            self.node_weights.resize(slot + 1, 0);
            self.alive.resize(slot + 1, false);
        }
        self.alive[slot] = true;
        self.node_weights[slot] = weight;
        self.total_weight += weight;
        self.live_nodes += 1;
        Ok(())
    }

    /// Deletes node `id` with all incident edges; returns the removed
    /// `(neighbor, edge weight)` pairs so the caller can adjust derived
    /// state (cut, boundary) before the adjacency is gone.
    pub fn delete_node(&mut self, id: NodeId) -> Result<Vec<(NodeId, EdgeWeight)>> {
        self.require_alive(id)?;
        let slot = id as usize;
        let removed: Vec<(NodeId, EdgeWeight)> = self.nbrs[slot]
            .iter()
            .copied()
            .zip(self.wts[slot].iter().copied())
            .collect();
        for &(nbr, _) in &removed {
            self.detach(nbr, id)
                .expect("adjacency lists out of sync (edge present on one side only)");
        }
        self.nbrs[slot].clear();
        self.wts[slot].clear();
        self.live_edges -= removed.len();
        self.total_weight -= self.node_weights[slot];
        self.node_weights[slot] = 0;
        self.alive[slot] = false;
        self.live_nodes -= 1;
        Ok(removed)
    }
}

impl NodeStream for DynamicGraph {
    /// The id-space size (see the [crate docs](crate); dead ids are counted
    /// but never streamed).
    fn num_nodes(&self) -> usize {
        self.id_space()
    }

    fn num_edges(&self) -> usize {
        self.live_edges
    }

    fn total_node_weight(&self) -> NodeWeight {
        self.total_weight
    }

    fn for_each_node(&mut self, f: &mut dyn FnMut(StreamedNode<'_>)) -> Result<()> {
        for v in 0..self.nbrs.len() {
            if self.alive[v] {
                f(StreamedNode {
                    node: v as NodeId,
                    weight: self.node_weights[v],
                    neighbors: &self.nbrs[v],
                    edge_weights: &self.wts[v],
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> DynamicGraph {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        DynamicGraph::from_graph(&g)
    }

    #[test]
    fn materialisation_matches_source_counts() {
        let g = path3();
        assert_eq!(g.id_space(), 3);
        assert_eq!(g.num_live_nodes(), 3);
        assert_eq!(g.num_live_edges(), 2);
        assert_eq!(g.live_weight(), 3);
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    fn edge_churn_updates_counts_and_adjacency() {
        let mut g = path3();
        g.insert_edge(0, 2, 5).unwrap();
        assert_eq!(g.num_live_edges(), 3);
        assert!(g.has_edge(2, 0));
        assert_eq!(g.delete_edge(0, 1).unwrap(), 1);
        assert_eq!(g.num_live_edges(), 2);
        assert!(!g.has_edge(1, 0));
        // Typed errors, nothing half-applied.
        assert!(g.insert_edge(0, 2, 1).is_err()); // duplicate
        assert!(g.insert_edge(1, 1, 1).is_err()); // self-loop
        assert!(g.delete_edge(0, 1).is_err()); // already gone
        assert_eq!(g.num_live_edges(), 2);
    }

    #[test]
    fn node_churn_grows_id_space_and_keeps_dead_ids() {
        let mut g = path3();
        g.insert_node(5, 4).unwrap();
        assert_eq!(g.id_space(), 6);
        assert_eq!(g.num_live_nodes(), 4);
        assert!(!g.is_alive(4)); // skipped id stays dead
        assert_eq!(g.live_weight(), 7);
        g.insert_edge(5, 1, 2).unwrap();

        let removed = g.delete_node(1).unwrap();
        assert_eq!(removed.len(), 3); // edges to 0, 2, 5
        assert_eq!(g.num_live_edges(), 0);
        assert_eq!(g.num_live_nodes(), 3);
        assert_eq!(g.id_space(), 6); // ids never disappear
        assert!(g.insert_edge(0, 1, 1).is_err()); // dead endpoint
        assert!(g.delete_node(1).is_err()); // already dead

        // A deleted id can be revived as a fresh node.
        g.insert_node(1, 9).unwrap();
        assert_eq!(g.degree(1), 0);
        assert_eq!(g.node_weight(1), 9);
    }

    #[test]
    fn streaming_skips_dead_nodes() {
        let mut g = path3();
        g.delete_node(1).unwrap();
        let mut seen = Vec::new();
        g.for_each_node(&mut |node| seen.push(node.node)).unwrap();
        assert_eq!(seen, vec![0, 2]);
        assert_eq!(g.num_nodes(), 3); // id space, not live count
    }
}
