//! Quickstart: partition a small community graph with nh-OMS in one pass and
//! compare it against the Fennel and Hashing baselines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use oms::prelude::*;

fn main() {
    // A synthetic graph with 16 planted communities — the kind of structure
    // a streaming partitioner should be able to exploit.
    let graph = planted_partition(4_000, 16, 0.02, 0.0005, 42);
    println!(
        "graph: {} nodes, {} edges, average degree {:.1}",
        graph.num_nodes(),
        graph.num_edges(),
        graph.average_degree()
    );

    let k = 16;
    println!("partitioning into k = {k} blocks (ε = 3 %)\n");

    // Online recursive multi-section without an explicit hierarchy (nh-OMS):
    // the artificial base-4 multi-section tree is built automatically.
    let oms = OnlineMultiSection::flat(k, OmsConfig::default()).expect("valid configuration");
    let oms_partition = oms.partition_graph(&graph).expect("partitioning succeeds");

    // The one-pass baselines of the paper.
    let fennel = Fennel::new(k, OnePassConfig::default())
        .partition_graph(&graph)
        .unwrap();
    let hashing = Hashing::new(k, OnePassConfig::default())
        .partition_graph(&graph)
        .unwrap();

    for (name, partition) in [
        ("nh-OMS", &oms_partition),
        ("Fennel", &fennel),
        ("Hashing", &hashing),
    ] {
        println!(
            "{name:>8}: edge-cut = {:>7}, imbalance = {:.3}, non-empty blocks = {}",
            edge_cut(&graph, partition.assignments()),
            partition.imbalance(),
            partition.used_blocks()
        );
    }

    let oms_cut = edge_cut(&graph, oms_partition.assignments()) as f64;
    let hash_cut = edge_cut(&graph, hashing.assignments()) as f64;
    println!(
        "\nnh-OMS improves {:.0} % over Hashing (paper's Fig. 2b relationship)",
        improvement_percent(oms_cut, hash_cut)
    );
}
