//! Quickstart: partition a small community graph with nh-OMS in one pass and
//! compare it against the Fennel and Hashing baselines — all driven through
//! the unified `JobSpec` API.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use oms::prelude::*;

fn main() {
    // A synthetic graph with 16 planted communities — the kind of structure
    // a streaming partitioner should be able to exploit.
    let graph = planted_partition(4_000, 16, 0.02, 0.0005, 42);
    println!(
        "graph: {} nodes, {} edges, average degree {:.1}",
        graph.num_nodes(),
        graph.num_edges(),
        graph.average_degree()
    );

    let k = 16;
    println!("partitioning into k = {k} blocks (ε = 3 %)\n");

    // One job spec string per algorithm: the factory resolves each against
    // the shared registry and returns a Box<dyn Partitioner>.
    let mut reports = Vec::new();
    for spec in [
        format!("nh-oms:{k}"),
        format!("fennel:{k}"),
        format!("hashing:{k}"),
    ] {
        let job: JobSpec = spec.parse().expect("valid job spec");
        let report = job
            .build()
            .expect("registered algorithm")
            .run(&mut InMemoryStream::new(&graph))
            .expect("partitioning succeeds");
        println!(
            "{:>8}: edge-cut = {:>7}, imbalance = {:.3}, non-empty blocks = {}",
            report.algorithm,
            report.edge_cut,
            report.imbalance,
            report.partition.used_blocks()
        );
        reports.push(report);
    }

    let oms_cut = reports[0].edge_cut as f64;
    let hash_cut = reports[2].edge_cut as f64;
    println!(
        "\nnh-OMS improves {:.0} % over Hashing (paper's Fig. 2b relationship)",
        improvement_percent(oms_cut, hash_cut)
    );
}
