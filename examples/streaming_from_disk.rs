//! Streaming from disk: convert a graph to the binary vertex-stream format,
//! then partition it while reading it back one node at a time — the
//! `O(n + k)` memory regime that makes streaming partitioning attractive for
//! huge graphs.
//!
//! ```text
//! cargo run --release --example streaming_from_disk
//! ```

use oms::graph::io::{write_stream_file, DiskStream};
use oms::metrics::{graph_memory_bytes, streaming_memory_bytes};
use oms::prelude::*;

fn main() {
    // Generate a mesh-like graph and persist it in vertex-stream format.
    let graph = random_geometric_graph(50_000, 3);
    let path = std::env::temp_dir().join("oms-example-rgg.oms");
    write_stream_file(&graph, &path).expect("can write the stream file");
    println!(
        "wrote {} ({} nodes, {} edges)",
        path.display(),
        graph.num_nodes(),
        graph.num_edges()
    );

    // Partition straight off the disk stream: the graph is never fully in
    // memory inside the partitioner.
    let k = 256;
    let mut stream = DiskStream::open(&path).expect("can open the stream file");
    let oms = OnlineMultiSection::flat(k, OmsConfig::default()).unwrap();
    let from_disk = oms.partition_stream(&mut stream).unwrap();

    // The same computation from memory gives the identical result: the
    // algorithm only ever sees one node and its neighborhood at a time.
    let from_memory = oms.partition_graph(&graph).unwrap();
    assert_eq!(from_disk, from_memory);

    println!(
        "nh-OMS from disk: edge-cut = {}, imbalance = {:.3}",
        edge_cut(&graph, from_disk.assignments()),
        from_disk.imbalance()
    );

    // The memory argument of §4.1: streaming state vs the whole CSR graph.
    let tree_nodes = oms.tree().num_nodes();
    let streaming = streaming_memory_bytes(graph.num_nodes(), tree_nodes);
    let in_memory = graph_memory_bytes(&graph, k as usize);
    println!(
        "streaming working set ≈ {:.2} MiB  vs  in-memory graph ≈ {:.2} MiB",
        streaming.total_mib(),
        in_memory.total_mib()
    );

    std::fs::remove_file(&path).ok();
}
