//! Streaming from disk: convert a graph to the binary vertex-stream format,
//! then partition it while reading it back one node at a time — the
//! `O(n + k)` memory regime that makes streaming partitioning attractive for
//! huge graphs.
//!
//! Because the unified [`Partitioner`] API takes `&mut dyn NodeStream`, the
//! exact same boxed partitioner runs off the disk stream and off the
//! in-memory stream — and produces identical results.
//!
//! ```text
//! cargo run --release --example streaming_from_disk
//! ```

use oms::graph::io::{write_stream_file, DiskStream};
use oms::metrics::{graph_memory_bytes, streaming_memory_bytes};
use oms::prelude::*;

fn main() {
    // Generate a mesh-like graph and persist it in vertex-stream format.
    let graph = random_geometric_graph(50_000, 3);
    let path = std::env::temp_dir().join("oms-example-rgg.oms");
    write_stream_file(&graph, &path).expect("can write the stream file");
    println!(
        "wrote {} ({} nodes, {} edges)",
        path.display(),
        graph.num_nodes(),
        graph.num_edges()
    );

    // One partitioner, two streams: the dyn-compatible NodeStream lets the
    // same Box<dyn Partitioner> consume either source.
    let k = 256;
    let partitioner = JobSpec::parse(&format!("nh-oms:{k}"))
        .expect("valid job spec")
        .build()
        .expect("registered algorithm");

    let mut disk = DiskStream::open(&path).expect("can open the stream file");
    let from_disk = partitioner.run(&mut disk).expect("disk run succeeds");
    let from_memory = partitioner
        .run(&mut InMemoryStream::new(&graph))
        .expect("memory run succeeds");

    // The algorithm only ever sees one node and its neighborhood at a time,
    // so the source of the stream cannot change the result.
    assert_eq!(from_disk.partition, from_memory.partition);

    println!(
        "nh-OMS from disk: edge-cut = {}, imbalance = {:.3}",
        from_disk.edge_cut, from_disk.imbalance
    );

    // The memory argument of §4.1: streaming state vs the whole CSR graph.
    let tree_nodes = oms::core::MultisectionTree::flat(k, 4).num_nodes();
    let streaming = streaming_memory_bytes(graph.num_nodes(), tree_nodes);
    let in_memory = graph_memory_bytes(&graph, k as usize);
    println!(
        "streaming working set ≈ {:.2} MiB  vs  in-memory graph ≈ {:.2} MiB",
        streaming.total_mib(),
        in_memory.total_mib()
    );

    std::fs::remove_file(&path).ok();
}
