//! The hybrid quality/speed trade-off of §3.2: solve the top layers of the
//! multi-section with Fennel and the bottom layers with Hashing.
//!
//! The more layers are hashed, the faster the pass — and the worse the
//! edge-cut, while the mapping objective degrades much more slowly because
//! the expensive top-level decisions are still made carefully.
//!
//! ```text
//! cargo run --release --example hybrid_tradeoff
//! ```

use oms::prelude::*;
use std::time::Instant;

fn main() {
    let graph = rmat_graph(16, 500_000, oms::gen::RmatParams::GRAPH500, 21);
    let hierarchy = HierarchySpec::parse("4:4:4:4").unwrap(); // k = 256, 4 layers
    let topology = Topology::parse("4:4:4:4", "1:10:100:1000").unwrap();
    println!(
        "graph: {} nodes, {} edges; hierarchy S = 4:4:4:4 (k = 256)\n",
        graph.num_nodes(),
        graph.num_edges()
    );

    println!(
        "{:<28} {:>9} {:>12} {:>10}",
        "configuration", "time [s]", "mapping J", "edge-cut"
    );
    for hashed_layers in 0..=4usize {
        let config = OmsConfig::default().hashing_bottom_layers(hashed_layers);
        let oms = OnlineMultiSection::with_hierarchy(hierarchy.clone(), config);
        let start = Instant::now();
        let partition = oms.partition_graph(&graph).unwrap();
        let secs = start.elapsed().as_secs_f64();
        let label = match hashed_layers {
            0 => "pure Fennel".to_string(),
            4 => "pure Hashing".to_string(),
            h => format!("{h} bottom layer(s) hashed"),
        };
        println!(
            "{:<28} {:>9.3} {:>12} {:>10}",
            label,
            secs,
            mapping_cost(&graph, partition.assignments(), &topology),
            edge_cut(&graph, partition.assignments()),
        );
    }
}
