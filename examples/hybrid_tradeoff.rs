//! The hybrid quality/speed trade-off of §3.2: solve the top layers of the
//! multi-section with Fennel and the bottom layers with Hashing, selected
//! per run with the `hybrid=` option of the job spec.
//!
//! The more layers are hashed, the faster the pass — and the worse the
//! edge-cut, while the mapping objective degrades much more slowly because
//! the expensive top-level decisions are still made carefully.
//!
//! ```text
//! cargo run --release --example hybrid_tradeoff
//! ```

use oms::prelude::*;

fn main() {
    let graph = rmat_graph(16, 500_000, oms::gen::RmatParams::GRAPH500, 21);
    println!(
        "graph: {} nodes, {} edges; hierarchy S = 4:4:4:4 (k = 256)\n",
        graph.num_nodes(),
        graph.num_edges()
    );

    println!(
        "{:<28} {:>9} {:>12} {:>10}",
        "configuration", "time [s]", "mapping J", "edge-cut"
    );
    for hashed_layers in 0..=4usize {
        let spec = format!("oms:4:4:4:4@hybrid={hashed_layers},dist=1:10:100:1000");
        let report = JobSpec::parse(&spec)
            .expect("valid job spec")
            .build()
            .expect("registered algorithm")
            .run(&mut InMemoryStream::new(&graph))
            .expect("partitioning succeeds");
        let label = match hashed_layers {
            0 => "pure Fennel".to_string(),
            4 => "pure Hashing".to_string(),
            h => format!("{h} bottom layer(s) hashed"),
        };
        println!(
            "{:<28} {:>9.3} {:>12} {:>10}",
            label,
            report.seconds,
            report.mapping_cost.expect("dist= given"),
            report.edge_cut,
        );
    }
}
