//! Buffered streaming: trading a little latency for a lot of quality.
//!
//! The strict one-pass model assigns each node the instant it arrives. The
//! `buffered` algorithm relaxes this to "assign by the end of the batch":
//! every batch pulled from the batch executor becomes an in-memory *model
//! graph*, is solved with the multilevel machinery, and is then committed to
//! the global blocks under the balance constraint. Memory stays
//! `O(buffer + k)`, but the cut closes much of the gap towards the fully
//! in-memory multilevel baseline.
//!
//! The example sweeps the buffer size on a community graph, compares against
//! the one-pass baselines, and runs the same job straight from a
//! double-buffered disk stream.
//!
//! ```text
//! cargo run --release --example buffered_streaming
//! ```

use oms::graph::io::{write_stream_file, DiskStream};
use oms::prelude::*;

fn main() {
    register_multilevel_algorithms();

    // A graph with 32 planted communities: plenty of structure for the
    // model solves to find.
    let graph = planted_partition(20_000, 32, 0.02, 0.0005, 42);
    let k = 32;
    println!(
        "planted partition: n = {}, m = {}, k = {k}\n",
        graph.num_nodes(),
        graph.num_edges()
    );

    // One-pass baselines vs the buffered algorithm at several buffer sizes.
    let mut jobs = vec![
        format!("hashing:{k}"),
        format!("ldg:{k}"),
        format!("fennel:{k}"),
        format!("nh-oms:{k}"),
    ];
    for buf in [512, 4096, 16384] {
        jobs.push(format!("buffered:{k}@buf={buf}"));
    }
    jobs.push(format!("multilevel:{k}"));

    println!(
        "{:<26} {:>9} {:>10} {:>9}",
        "job", "edge-cut", "imbalance", "time"
    );
    for job_text in &jobs {
        let job: JobSpec = job_text.parse().expect("valid job spec");
        let report = job
            .build()
            .expect("registered algorithm")
            .run(&mut InMemoryStream::new(&graph))
            .expect("run succeeds");
        println!(
            "{:<26} {:>9} {:>10.4} {:>8.3}s",
            job_text, report.edge_cut, report.imbalance, report.seconds
        );
    }

    // The same buffered job also runs straight off disk; the stream layer
    // decodes batch B+1 on a reader thread while batch B is being solved.
    let path = std::env::temp_dir().join("oms-example-buffered.oms");
    write_stream_file(&graph, &path).expect("can write the stream file");
    let job: JobSpec = format!("buffered:{k}@buf=4096").parse().unwrap();
    let partitioner = job.build().unwrap();
    let mut disk = DiskStream::open(&path).expect("can open the stream file");
    assert!(disk.is_double_buffered());
    let from_disk = partitioner.run(&mut disk).expect("disk run succeeds");
    let from_memory = partitioner
        .run(&mut InMemoryStream::new(&graph))
        .expect("memory run succeeds");
    assert_eq!(
        from_disk.partition, from_memory.partition,
        "the stream source must not change the result"
    );
    println!(
        "\nbuffered from disk (double-buffered ingest): edge-cut = {}, identical to in-memory ✓",
        from_disk.edge_cut
    );
    std::fs::remove_file(&path).ok();
}
