//! Edge partitioning (vertex-cut): replicating hubs instead of cutting them.
//!
//! Power-law graphs have hub vertices whose adjacency no balanced *node*
//! partition can localise — most hub edges cross blocks no matter what. A
//! vertex-cut partition assigns **edges** to blocks and lets vertices be
//! *replicated*; quality becomes the replication factor `RF` (average
//! replicas per vertex, 1.0 = nothing replicated) under an edge-count
//! balance constraint.
//!
//! This example runs the three streaming edge partitioners on a skewed RMAT
//! graph — `e-hash` (the balanced-but-oblivious floor), `e-dbh`
//! (degree-based hashing) and `e-greedy` (HDRF-style scoring) — then sweeps
//! `e-greedy`'s λ balance knob (the RF-vs-balance trade-off behind the
//! README table) and shows the multi-pass trajectory and the same job
//! running off a rewound disk stream.
//!
//! ```text
//! cargo run --release --example edge_partitioning
//! ```

use oms::edgepart::build_edge_partitioner;
use oms::graph::io::{write_stream_file, DiskStream};
use oms::graph::EdgesOf;
use oms::prelude::*;

fn run(job: &str, graph: &CsrGraph) -> oms::edgepart::EdgePartitionReport {
    let spec = JobSpec::parse(job).unwrap();
    build_edge_partitioner(&spec)
        .unwrap()
        .run(&mut EdgesOf(InMemoryStream::new(graph)))
        .unwrap_or_else(|e| panic!("{job}: {e}"))
}

fn main() {
    let graph = rmat_graph(16, 1 << 19, oms::gen::RmatParams::GRAPH500, 42);
    let k = 32;
    println!(
        "rmat: n = {}, m = {}, max degree = {}, p99 degree = {} (hub-dominated)\n",
        graph.num_nodes(),
        graph.num_edges(),
        graph.max_degree(),
        graph.degree_percentile(0.99),
    );

    println!("== the three streaming edge partitioners, k = {k} ==");
    for algo in ["e-hash", "e-dbh", "e-greedy"] {
        let report = run(&format!("{algo}:{k}@seed=3"), &graph);
        println!(
            "{algo:<9} RF {:.4}  max replicas {:>3}  edge imbalance {:.4}  ({:.3} s)",
            report.replication_factor, report.max_replicas, report.imbalance, report.seconds
        );
    }

    println!("\n== e-greedy: the λ balance knob (RF vs. edge balance) ==");
    for lambda in [0.1, 0.5, 1.0, 2.0, 5.0] {
        let report = run(&format!("e-greedy:{k}@seed=3,lambda={lambda}"), &graph);
        println!(
            "lambda = {lambda:<4} RF {:.4}  edge imbalance {:.4}",
            report.replication_factor, report.imbalance
        );
    }

    println!("\n== multi-pass re-streaming (e-greedy, pass budget 4) ==");
    let report = run(&format!("e-greedy:{k}@seed=3,passes=4"), &graph);
    for stats in &report.trajectory {
        println!(
            "    pass {}: RF {:.4}  moved {:>7}  imbalance {:.4}",
            stats.pass, stats.replication_factor, stats.moved, stats.imbalance
        );
    }

    // The same pipeline runs off any node-stream source: here the binary
    // disk format, rewound (re-opened and re-validated) between passes.
    println!("\n== edge partitioning straight off a disk stream ==");
    let dir = std::env::temp_dir().join("oms-edgepart-example");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("graph.oms");
    write_stream_file(&graph, &path).unwrap();
    let spec = JobSpec::parse(&format!("e-greedy:{k}@seed=3,passes=2")).unwrap();
    let report = build_edge_partitioner(&spec)
        .unwrap()
        .run(&mut EdgesOf(DiskStream::open(&path).unwrap()))
        .unwrap();
    println!(
        "e-greedy (disk): RF {:.4} over {} passes ({:.3} s)",
        report.replication_factor,
        report.trajectory.len(),
        report.seconds
    );
    std::fs::remove_file(&path).ok();
}
