//! Restreaming: iterative quality at streaming memory cost.
//!
//! A one-pass streaming partitioner decides each node with only the prefix
//! streamed before it. *Restreaming* runs more passes over the same stream:
//! from the second pass on every node is unassigned and re-scored against
//! the **complete** previous assignment, so each pass can only get better
//! information — near-in-memory quality without ever holding the graph.
//!
//! The multi-pass engine behind `passes=N` records a per-pass quality
//! trajectory, stops early once the partition converges (no node moved, or
//! the improvement fell below the `conv=` threshold) and rolls back a pass
//! that overshot. This example shows the trajectory for several algorithms,
//! the convergence early-exit, and the same job running straight off a
//! disk stream that is rewound between passes.
//!
//! ```text
//! cargo run --release --example restreaming
//! ```

use oms::graph::io::{write_stream_file, DiskStream};
use oms::prelude::*;

fn print_trajectory(label: &str, report: &PartitionReport) {
    println!(
        "{label}: final cut {} ({:.4} s)",
        report.edge_cut, report.seconds
    );
    for stats in &report.trajectory {
        println!(
            "    pass {}: cut {:>6}  moved {:>6}  imbalance {:.4}",
            stats.pass, stats.edge_cut, stats.moved, stats.imbalance
        );
    }
}

fn main() {
    register_multilevel_algorithms();

    let graph = planted_partition(20_000, 16, 0.02, 0.001, 42);
    let k = 16;
    println!(
        "planted partition: n = {}, m = {}, k = {k}\n",
        graph.num_nodes(),
        graph.num_edges()
    );

    // Every algorithm in the registry understands passes=N.
    println!("== quality vs. passes (pass budget 5) ==");
    for algo in ["fennel", "ldg", "nh-oms", "buffered", "multilevel"] {
        let job = JobSpec::parse(&format!("{algo}:{k}@seed=3,passes=5")).unwrap();
        let report = job
            .build()
            .unwrap()
            .run(&mut InMemoryStream::new(&graph))
            .unwrap();
        print_trajectory(algo, &report);
    }

    // The convergence threshold stops a run once a pass improves the cut by
    // less than the given fraction — here 2 %.
    println!("\n== convergence early exit (conv=0.02, budget 10) ==");
    let report = JobSpec::parse(&format!("fennel:{k}@seed=3,passes=10,conv=0.02"))
        .unwrap()
        .build()
        .unwrap()
        .run(&mut InMemoryStream::new(&graph))
        .unwrap();
    print_trajectory("fennel", &report);
    println!(
        "    stopped after {} of 10 budgeted passes",
        report.trajectory.len()
    );

    // Restreaming straight off disk: the engine rewinds the stream between
    // passes (each pass re-opens and re-validates the file).
    println!("\n== restreaming from a disk stream ==");
    let dir = std::env::temp_dir().join("oms-restreaming-example");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("graph.oms");
    write_stream_file(&graph, &path).unwrap();
    let mut stream = DiskStream::open(&path).unwrap();
    let report = JobSpec::parse(&format!("fennel:{k}@seed=3,passes=3"))
        .unwrap()
        .build()
        .unwrap()
        .run(&mut stream)
        .unwrap();
    print_trajectory("fennel (disk, double-buffered ingest)", &report);
    std::fs::remove_file(&path).ok();
}
