//! Process mapping: stream a communication graph onto a hierarchical machine
//! (`S = 4:8:4`, `D = 1:10:100`) and compare the mapping cost `J` of
//! OMS against Fennel (which ignores the hierarchy), Hashing, and the
//! offline in-memory recursive multi-section — each selected by a `JobSpec`
//! string and evaluated through the unified `PartitionReport`.
//!
//! ```text
//! cargo run --release --example process_mapping
//! ```

use oms::prelude::*;

fn main() {
    // The in-memory baselines live behind the same registry; register them
    // once so "rms:..." resolves.
    register_multilevel_algorithms();

    // A social-network-like communication graph (heavy-tailed degrees).
    let graph = barabasi_albert(6_000, 6, 7);
    println!(
        "communication graph: {} processes, {} edges\n",
        graph.num_nodes(),
        graph.num_edges()
    );

    // The machine: 4 cores per processor, 8 processors per node, 4 nodes.
    println!("machine: S = 4:8:4 (128 PEs), D = 1:10:100\n");

    println!("{:<24} {:>14} {:>10}", "job", "mapping cost J", "edge-cut");
    let mut fennel_partition: Option<Partition> = None;
    for (label, spec) in [
        ("OMS (streaming)", "oms:4:8:4@dist=1:10:100"),
        ("Fennel (no hierarchy)", "fennel:4:8:4@dist=1:10:100"),
        ("Hashing", "hashing:4:8:4@dist=1:10:100"),
        ("offline multi-section", "rms:4:8:4@dist=1:10:100"),
    ] {
        let report = JobSpec::parse(spec)
            .expect("valid job spec")
            .build()
            .expect("registered algorithm")
            .run(&mut InMemoryStream::new(&graph))
            .expect("mapping succeeds");
        println!(
            "{:<24} {:>14} {:>10}",
            label,
            report.mapping_cost.expect("dist= given"),
            report.edge_cut,
        );
        if report.algorithm == "fennel" {
            fennel_partition = Some(report.partition);
        }
    }

    // A plain partitioner can be turned into a mapper after the fact by
    // assigning its blocks to PEs (greedy + local search) — still worse than
    // building the hierarchy into the streaming pass itself.
    let topology = Topology::parse("4:8:4", "1:10:100").unwrap();
    let fennel = fennel_partition.expect("fennel ran");
    let remapped = remap_partition(&fennel, &offline_block_mapping(&graph, &fennel, &topology));
    println!(
        "{:<24} {:>14} {:>10}",
        "Fennel + block remap",
        mapping_cost(&graph, &remapped, &topology),
        edge_cut(&graph, &remapped),
    );
}
