//! Process mapping: stream a communication graph onto a hierarchical machine
//! (`S = 4:8:4`, `D = 1:10:100`) and compare the mapping cost `J` of
//! OMS against Fennel (which ignores the hierarchy), Hashing, and the
//! offline in-memory recursive multi-section.
//!
//! ```text
//! cargo run --release --example process_mapping
//! ```

use oms::prelude::*;

fn main() {
    // A social-network-like communication graph (heavy-tailed degrees).
    let graph = barabasi_albert(6_000, 6, 7);
    println!(
        "communication graph: {} processes, {} edges\n",
        graph.num_nodes(),
        graph.num_edges()
    );

    // The machine: 4 cores per processor, 8 processors per node, 4 nodes.
    let topology = Topology::parse("4:8:4", "1:10:100").unwrap();
    let hierarchy = HierarchySpec::parse("4:8:4").unwrap();
    let k = topology.num_pes();
    println!(
        "machine: S = 4:8:4 ({} PEs), D = 1:10:100\n",
        k
    );

    // Streaming process mapping with OMS (single pass, hierarchy-aware).
    let oms = OnlineMultiSection::with_hierarchy(hierarchy.clone(), OmsConfig::default())
        .partition_graph(&graph)
        .unwrap();

    // Streaming baselines that ignore the hierarchy.
    let fennel = Fennel::new(k, OnePassConfig::default())
        .partition_graph(&graph)
        .unwrap();
    let hashing = Hashing::new(k, OnePassConfig::default())
        .partition_graph(&graph)
        .unwrap();

    // The offline, in-memory reference (IntMap-like): multilevel recursive
    // multi-section with full access to the graph.
    let offline = RecursiveMultisection::new(hierarchy, MultilevelConfig::default())
        .partition(&graph)
        .unwrap();

    println!("{:<22} {:>14} {:>10}", "algorithm", "mapping cost J", "edge-cut");
    for (name, partition) in [
        ("OMS (streaming)", &oms),
        ("Fennel (no hierarchy)", &fennel),
        ("Hashing", &hashing),
        ("offline multi-section", &offline),
    ] {
        println!(
            "{:<22} {:>14} {:>10}",
            name,
            mapping_cost(&graph, partition.assignments(), &topology),
            edge_cut(&graph, partition.assignments()),
        );
    }

    // A plain partitioner can be turned into a mapper after the fact by
    // assigning its blocks to PEs (greedy + local search) — still worse than
    // building the hierarchy into the streaming pass itself.
    let remapped = remap_partition(&fennel, &offline_block_mapping(&graph, &fennel, &topology));
    println!(
        "{:<22} {:>14} {:>10}",
        "Fennel + block remap",
        mapping_cost(&graph, &remapped, &topology),
        edge_cut(&graph, &remapped),
    );
}
