//! Shared-memory scaling (§3.4): run the vertex-centric parallel OMS and the
//! parallel Fennel baseline with increasing thread counts and report the
//! speedups (the laptop-scale version of Table 2 / Fig. 3). The thread count
//! is just a `threads=` option in the job spec — the registry picks the
//! parallel driver automatically.
//!
//! ```text
//! cargo run --release --example parallel_scaling
//! ```

use oms::prelude::*;

fn main() {
    let graph = random_geometric_graph(200_000, 5);
    let k = 1024u32;
    println!(
        "graph: {} nodes, {} edges; k = {k}\n",
        graph.num_nodes(),
        graph.num_edges()
    );

    let max_threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4);
    let mut thread_counts = vec![1usize];
    while thread_counts.last().unwrap() * 2 <= max_threads {
        let next = thread_counts.last().unwrap() * 2;
        thread_counts.push(next);
    }

    let run = |spec: &str| {
        JobSpec::parse(spec)
            .expect("valid job spec")
            .build()
            .expect("registered algorithm")
            .run(&mut InMemoryStream::new(&graph))
            .expect("partitioning succeeds")
    };

    println!(
        "{:>8} {:>12} {:>8} {:>14} {:>8}",
        "threads", "OMS [s]", "speedup", "Fennel [s]", "speedup"
    );
    let mut oms_base = 0.0;
    let mut fennel_base = 0.0;
    for &threads in &thread_counts {
        let oms_report = run(&format!("oms:4:16:16@threads={threads}"));
        let fennel_report = run(&format!("fennel:{k}@threads={threads}"));

        if threads == 1 {
            oms_base = oms_report.seconds;
            fennel_base = fennel_report.seconds;
        }
        println!(
            "{:>8} {:>12.3} {:>7.1}x {:>14.3} {:>7.1}x",
            threads,
            oms_report.seconds,
            oms_base / oms_report.seconds,
            fennel_report.seconds,
            fennel_base / fennel_report.seconds
        );
        // Sanity: the parallel runs still produce balanced partitions.
        assert!(
            oms_report.imbalance < 0.2,
            "OMS imbalance {}",
            oms_report.imbalance
        );
        assert!(
            fennel_report.imbalance < 0.2,
            "Fennel imbalance {}",
            fennel_report.imbalance
        );
    }
    println!("\n(OMS is expected to sit between Hashing and Fennel in scalability — §4.2.)");
}
