//! Shared-memory scaling (§3.4): run the vertex-centric parallel OMS and the
//! parallel Fennel baseline with increasing thread counts and report the
//! speedups (the laptop-scale version of Table 2 / Fig. 3).
//!
//! ```text
//! cargo run --release --example parallel_scaling
//! ```

use oms::core::parallel::{onepass_parallel, FlatScorer};
use oms::prelude::*;
use std::time::Instant;

fn main() {
    let graph = random_geometric_graph(200_000, 5);
    let k = 1024u32;
    let hierarchy = HierarchySpec::parse("4:16:16").unwrap(); // k = 1024
    let oms = OnlineMultiSection::with_hierarchy(hierarchy, OmsConfig::default());
    println!(
        "graph: {} nodes, {} edges; k = {k}\n",
        graph.num_nodes(),
        graph.num_edges()
    );

    let max_threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4);
    let mut thread_counts = vec![1usize];
    while thread_counts.last().unwrap() * 2 <= max_threads {
        let next = thread_counts.last().unwrap() * 2;
        thread_counts.push(next);
    }

    println!(
        "{:>8} {:>12} {:>8} {:>14} {:>8}",
        "threads", "OMS [s]", "speedup", "Fennel [s]", "speedup"
    );
    let mut oms_base = 0.0;
    let mut fennel_base = 0.0;
    for &threads in &thread_counts {
        let start = Instant::now();
        let p = oms.partition_graph_parallel(&graph, threads).unwrap();
        let oms_secs = start.elapsed().as_secs_f64();

        let start = Instant::now();
        let f = onepass_parallel(&graph, k, FlatScorer::Fennel, OnePassConfig::default(), threads)
            .unwrap();
        let fennel_secs = start.elapsed().as_secs_f64();

        if threads == 1 {
            oms_base = oms_secs;
            fennel_base = fennel_secs;
        }
        println!(
            "{:>8} {:>12.3} {:>7.1}x {:>14.3} {:>7.1}x",
            threads,
            oms_secs,
            oms_base / oms_secs,
            fennel_secs,
            fennel_base / fennel_secs
        );
        // Sanity: the parallel runs still produce balanced partitions.
        assert!(p.imbalance() < 0.2, "OMS imbalance {}", p.imbalance());
        assert!(f.imbalance() < 0.2, "Fennel imbalance {}", f.imbalance());
    }
    println!("\n(OMS is expected to sit between Hashing and Fennel in scalability — §4.2.)");
}
